//! Wire codecs for the Chord RPCs.
//!
//! Defines the byte-level representation of the protocol's messages over
//! `np-netsim`'s length-prefixed framing, so the DHT's messages are real
//! byte frames with the usual hazards (short reads, coalesced frames)
//! covered by the shared decoder tests.

use bytes::{BufMut, Bytes, BytesMut};
use np_netsim::wire::{get_u32, get_u64, get_u8, WireDecode, WireEncode};

/// A Chord RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChordMsg {
    /// "Who owns `key`?" — iterative lookup step.
    FindSuccessor { req_id: u32, key: u64 },
    /// "Node `node_id` does / ask `next` instead."
    SuccessorIs {
        req_id: u32,
        node_id: u64,
        is_final: bool,
    },
    /// Store a value at the owner.
    Put { req_id: u32, key: u64, value: u64 },
    /// Fetch values at the owner.
    Get { req_id: u32, key: u64 },
    /// Values for a Get.
    Values { req_id: u32, values: Vec<u64> },
}

const T_FIND: u8 = 1;
const T_SUCC: u8 = 2;
const T_PUT: u8 = 3;
const T_GET: u8 = 4;
const T_VALUES: u8 = 5;

impl WireEncode for ChordMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ChordMsg::FindSuccessor { req_id, key } => {
                buf.put_u8(T_FIND);
                buf.put_u32(*req_id);
                buf.put_u64(*key);
            }
            ChordMsg::SuccessorIs {
                req_id,
                node_id,
                is_final,
            } => {
                buf.put_u8(T_SUCC);
                buf.put_u32(*req_id);
                buf.put_u64(*node_id);
                buf.put_u8(u8::from(*is_final));
            }
            ChordMsg::Put { req_id, key, value } => {
                buf.put_u8(T_PUT);
                buf.put_u32(*req_id);
                buf.put_u64(*key);
                buf.put_u64(*value);
            }
            ChordMsg::Get { req_id, key } => {
                buf.put_u8(T_GET);
                buf.put_u32(*req_id);
                buf.put_u64(*key);
            }
            ChordMsg::Values { req_id, values } => {
                buf.put_u8(T_VALUES);
                buf.put_u32(*req_id);
                buf.put_u32(values.len() as u32);
                for v in values {
                    buf.put_u64(*v);
                }
            }
        }
    }
}

impl WireDecode for ChordMsg {
    fn decode(payload: &mut Bytes) -> Option<Self> {
        match get_u8(payload)? {
            T_FIND => Some(ChordMsg::FindSuccessor {
                req_id: get_u32(payload)?,
                key: get_u64(payload)?,
            }),
            T_SUCC => Some(ChordMsg::SuccessorIs {
                req_id: get_u32(payload)?,
                node_id: get_u64(payload)?,
                is_final: get_u8(payload)? != 0,
            }),
            T_PUT => Some(ChordMsg::Put {
                req_id: get_u32(payload)?,
                key: get_u64(payload)?,
                value: get_u64(payload)?,
            }),
            T_GET => Some(ChordMsg::Get {
                req_id: get_u32(payload)?,
                key: get_u64(payload)?,
            }),
            T_VALUES => {
                let req_id = get_u32(payload)?;
                let n = get_u32(payload)? as usize;
                if n > 1 << 16 {
                    return None; // bounded, like MAX_FRAME
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(get_u64(payload)?);
                }
                Some(ChordMsg::Values { req_id, values })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_netsim::wire::{encode_frame, Decoder};

    fn samples() -> Vec<ChordMsg> {
        vec![
            ChordMsg::FindSuccessor { req_id: 1, key: 42 },
            ChordMsg::SuccessorIs {
                req_id: 1,
                node_id: u64::MAX,
                is_final: true,
            },
            ChordMsg::Put {
                req_id: 2,
                key: 7,
                value: 99,
            },
            ChordMsg::Get { req_id: 3, key: 7 },
            ChordMsg::Values {
                req_id: 3,
                values: vec![99, 100, 101],
            },
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        let mut dec = Decoder::new();
        for msg in samples() {
            dec.extend(&encode_frame(&msg));
            let got: ChordMsg = dec.next().expect("ok").expect("complete");
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn truncated_payloads_are_malformed() {
        for msg in samples() {
            let frame = encode_frame(&msg);
            // Cut one byte off the payload and fix the length prefix.
            let payload_len = frame.len() - 4 - 1;
            let mut bad = Vec::new();
            bad.extend_from_slice(&(payload_len as u32).to_be_bytes());
            bad.extend_from_slice(&frame[4..frame.len() - 1]);
            let mut dec = Decoder::new();
            dec.extend(&bad);
            assert!(
                dec.next::<ChordMsg>().is_err(),
                "truncated {msg:?} decoded"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(0xFF);
        let mut dec = Decoder::new();
        dec.extend(&buf);
        assert!(dec.next::<ChordMsg>().is_err());
    }

    #[test]
    fn oversized_values_vector_rejected() {
        let mut payload = BytesMut::new();
        payload.put_u8(super::T_VALUES);
        payload.put_u32(9);
        payload.put_u32(1 << 20); // absurd count
        let mut framed = BytesMut::new();
        framed.put_u32(payload.len() as u32);
        framed.extend_from_slice(&payload);
        let mut dec = Decoder::new();
        dec.extend(&framed);
        assert!(dec.next::<ChordMsg>().is_err());
    }
}
