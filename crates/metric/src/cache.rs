//! Precomputed ground truth for batches of queries.
//!
//! The runner checks every query outcome against the true nearest
//! overlay member of its target. Computing that truth is an O(overlay)
//! scan — repeated for every one of thousands of queries over only
//! ~100 distinct reused targets, it dominated the runner's profile.
//! [`NearestCache`] hoists the scan out of the query loop: one parallel
//! pass over the distinct targets up front, O(1) lookups afterwards.

use crate::matrix::PeerId;
use crate::world::WorldStore;
use np_util::parallel::par_map;
use std::collections::HashMap;

/// Ground-truth `target → nearest member` map, built once per scenario.
#[derive(Debug, Clone)]
pub struct NearestCache {
    nearest: HashMap<PeerId, PeerId>,
}

impl NearestCache {
    /// Precompute the true nearest member (ties by lowest id, matching
    /// [`WorldStore::nearest_within`]) for every target, scanning
    /// targets in parallel on `threads` workers. Works over any
    /// latency backend — dense matrix or sharded world.
    ///
    /// Each target's scan is independent and reads only the shared
    /// world, so the result is identical at any thread count.
    ///
    /// # Panics
    /// Panics if `members` contains no peer other than some target
    /// (a scenario with an empty overlay is a bug upstream).
    pub fn build<W: WorldStore + ?Sized>(
        world: &W,
        members: &[PeerId],
        targets: &[PeerId],
        threads: usize,
    ) -> NearestCache {
        let pairs = par_map(threads, targets, |_, &t| {
            let n = world
                .nearest_within(t, members)
                .expect("overlay has at least one non-target member");
            (t, n)
        });
        NearestCache {
            nearest: pairs.into_iter().collect(),
        }
    }

    /// The cached true nearest member of `target`; `None` if `target`
    /// was not in the build set.
    pub fn nearest(&self, target: PeerId) -> Option<PeerId> {
        self.nearest.get(&target).copied()
    }

    /// Incremental maintenance, eviction side: `peer` left the overlay
    /// (or its latencies drifted). Targets whose cached answer is
    /// `peer` rescan over `members` — the *current* membership,
    /// excluding `peer` after a leave, still including it after a
    /// drift — through `world` (the current, possibly drifted,
    /// backend). Targets pointing elsewhere keep an argmin that the
    /// change cannot have disturbed, so the result is bit-identical to
    /// a fresh [`NearestCache::build`] over `(world, members)`.
    ///
    /// # Panics
    /// Panics if a rescan finds no candidate (`members` must retain a
    /// non-target peer).
    pub fn evict_member<W: WorldStore + ?Sized>(
        &mut self,
        world: &W,
        members: &[PeerId],
        peer: PeerId,
    ) {
        // np-lint: allow(D1) — independent per-entry argmin rescan; visit order cannot reach results
        for (&t, best) in self.nearest.iter_mut() {
            if *best == peer {
                *best = world
                    .nearest_within(t, members)
                    .expect("overlay keeps at least one non-target member");
            }
        }
    }

    /// Incremental maintenance, admission side: `peer` joined the
    /// overlay (or finished drifting). Each cached answer is compared
    /// against `peer`'s current distance, with the same lowest-id tie
    /// break as [`WorldStore::nearest_within`], so the result matches
    /// a fresh build exactly. For a drift, call
    /// [`NearestCache::evict_member`] (with `peer` still in `members`)
    /// first, then this.
    pub fn admit_member<W: WorldStore + ?Sized>(&mut self, world: &W, peer: PeerId) {
        // np-lint: allow(D1) — independent per-entry argmin update; visit order cannot reach results
        for (&t, best) in self.nearest.iter_mut() {
            if t == peer || *best == peer {
                continue;
            }
            let d = world.rtt(t, peer);
            let bd = world.rtt(t, *best);
            if d < bd || (d == bd && peer < *best) {
                *best = peer;
            }
        }
    }

    /// Number of cached targets.
    pub fn len(&self) -> usize {
        self.nearest.len()
    }

    /// True iff no targets were cached.
    pub fn is_empty(&self) -> bool {
        self.nearest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LatencyMatrix;
    use np_util::Micros;

    fn line_matrix(n: usize) -> LatencyMatrix {
        LatencyMatrix::build(n, |a, b| {
            Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
        })
    }

    #[test]
    fn cache_matches_direct_scan_at_any_thread_count() {
        let m = line_matrix(64);
        let members: Vec<PeerId> = (0..48).map(PeerId).collect();
        let targets: Vec<PeerId> = (48..64).map(PeerId).collect();
        let serial = NearestCache::build(&m, &members, &targets, 1);
        for threads in [2, 8] {
            let par = NearestCache::build(&m, &members, &targets, threads);
            for &t in &targets {
                assert_eq!(par.nearest(t), serial.nearest(t));
                assert_eq!(par.nearest(t), m.nearest_within(t, &members));
            }
        }
        assert_eq!(serial.len(), targets.len());
    }

    #[test]
    fn unknown_target_is_none() {
        let m = line_matrix(8);
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let cache = NearestCache::build(&m, &members, &[PeerId(5)], 1);
        assert_eq!(cache.nearest(PeerId(6)), None);
        assert_eq!(cache.nearest(PeerId(5)), Some(PeerId(3)));
        assert!(!cache.is_empty());
    }

    #[test]
    fn evict_matches_fresh_build_after_leaves() {
        let m = line_matrix(40);
        let mut members: Vec<PeerId> = (0..30).map(PeerId).collect();
        let targets: Vec<PeerId> = (30..40).map(PeerId).collect();
        let mut cache = NearestCache::build(&m, &members, &targets, 2);
        // Remove the peers closest to the targets — the worst case for
        // an incremental rescan.
        for dead in [29u32, 28, 27] {
            let p = PeerId(dead);
            members.retain(|&q| q != p);
            cache.evict_member(&m, &members, p);
            let fresh = NearestCache::build(&m, &members, &targets, 1);
            for &t in &targets {
                assert_eq!(cache.nearest(t), fresh.nearest(t), "after removing {p}");
            }
        }
    }

    #[test]
    fn admit_matches_fresh_build_after_joins() {
        let m = line_matrix(40);
        let mut members: Vec<PeerId> = (0..25).map(PeerId).collect();
        let targets: Vec<PeerId> = (30..40).map(PeerId).collect();
        let mut cache = NearestCache::build(&m, &members, &targets, 1);
        for newcomer in [29u32, 25, 28] {
            let p = PeerId(newcomer);
            members.push(p);
            members.sort_unstable();
            cache.admit_member(&m, p);
            let fresh = NearestCache::build(&m, &members, &targets, 2);
            for &t in &targets {
                assert_eq!(cache.nearest(t), fresh.nearest(t), "after admitting {p}");
            }
        }
    }

    #[test]
    fn drift_refresh_is_evict_then_admit() {
        use crate::drift::DriftedWorld;
        let m = line_matrix(20);
        let members: Vec<PeerId> = (0..15).map(PeerId).collect();
        let targets: Vec<PeerId> = (15..20).map(PeerId).collect();
        let mut off = vec![0u64; 20];
        let mut cache = {
            let w = DriftedWorld::new(&m, &off);
            NearestCache::build(&w, &members, &targets, 1)
        };
        // Penalise peer 14 (the nearest of target 15) heavily, then
        // relax it again; the incremental refresh must track the fresh
        // build at every step.
        for penalty in [5_000u64, 0, 900] {
            off[14] = penalty;
            let w = DriftedWorld::new(&m, &off);
            cache.evict_member(&w, &members, PeerId(14));
            cache.admit_member(&w, PeerId(14));
            let fresh = NearestCache::build(&w, &members, &targets, 2);
            for &t in &targets {
                assert_eq!(cache.nearest(t), fresh.nearest(t), "at penalty {penalty}");
            }
        }
    }

    #[test]
    fn empty_targets_build_empty_cache() {
        let m = line_matrix(4);
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let cache = NearestCache::build(&m, &members, &[], 4);
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
    }
}
