//! The shared nearest-scan kernel.
//!
//! Every ground-truth nearest query in the workspace — dense
//! [`crate::LatencyMatrix::nearest_within`], the [`crate::WorldStore`]
//! default implementation that [`crate::ShardedWorld`] inherits, and
//! the [`crate::NearestCache`] precompute built on top of them —
//! bottoms out in the same operation: *argmin over a gathered `f32`
//! distance row, ties broken by lowest [`PeerId`]*. This module is that
//! one kernel, written so the hot reduction auto-vectorizes.
//!
//! # Shape
//!
//! The scan is two passes, both branch-free over `chunks_exact` lanes:
//!
//! 1. [`min_f32`] folds the row into [`LANES`] independent per-lane
//!    minima (no cross-lane dependency, so LLVM lowers the loop to
//!    packed `min` instructions), then reduces the lanes and the
//!    remainder scalar-tail;
//! 2. [`nearest_in`] re-walks the row once comparing against that
//!    minimum and keeps the lowest `PeerId` among the hits.
//!
//! Splitting value-min from id-tie-breaking is what keeps pass 1
//! vectorizable: a fused `(f32, PeerId)` lexicographic min would force
//! scalar compares. Pass 2 is a predictable equality scan that almost
//! never hits more than once.
//!
//! # Exclusions
//!
//! Callers exclude entries (the query target itself, departed members)
//! by gathering `f32::INFINITY` for them; an all-infinite row yields
//! `None`. Latency matrices validate all cells finite, so infinity is
//! unambiguous as a sentinel.
//!
//! # Tie semantics
//!
//! Ties are decided on the raw `f32` values. Every matrix in the
//! workspace stores whole microseconds (cells come from
//! [`np_util::Micros`]), and integral `f32` values survive the
//! `f32 → u64 → f32` round-trip exactly, so f32 equality here coincides
//! with the `Micros` equality the pre-kernel scalar scans used.

use crate::matrix::PeerId;

/// Lane width of the per-lane min fold. Eight `f32`s span a 256-bit
/// vector register; narrower targets simply unroll.
pub const LANES: usize = 8;

/// Minimum of a row of `f32` distances; `f32::INFINITY` on an empty
/// row. NaN-free input is assumed (matrix validation enforces it).
#[inline]
pub fn min_f32(dists: &[f32]) -> f32 {
    let mut lanes = [f32::INFINITY; LANES];
    let chunks = dists.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (lane, &d) in lanes.iter_mut().zip(chunk) {
            // `if` rather than `f32::min`: identical on NaN-free input
            // and guaranteed to lower to a packed-min select.
            if d < *lane {
                *lane = d;
            }
        }
    }
    let mut min = f32::INFINITY;
    for &lane in &lanes {
        if lane < min {
            min = lane;
        }
    }
    for &d in tail {
        if d < min {
            min = d;
        }
    }
    min
}

/// The member with the smallest gathered distance, ties broken by
/// lowest [`PeerId`]. `dists[i]` is the distance of `members[i]`;
/// entries gathered as `f32::INFINITY` are excluded. `None` when every
/// entry is excluded (or the row is empty).
///
/// # Panics
/// Panics if `dists` and `members` disagree in length.
pub fn nearest_in(dists: &[f32], members: &[PeerId]) -> Option<PeerId> {
    assert_eq!(
        dists.len(),
        members.len(),
        "distance row and member list must align"
    );
    let min = min_f32(dists);
    if min == f32::INFINITY {
        return None;
    }
    let mut best: Option<PeerId> = None;
    for (&d, &p) in dists.iter().zip(members) {
        if d == min && best.map_or(true, |b| p < b) {
            best = Some(p);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-kernel semantics, verbatim: lexicographic min over
    /// `(distance, id)` with infinite entries excluded.
    fn naive(dists: &[f32], members: &[PeerId]) -> Option<PeerId> {
        dists
            .iter()
            .zip(members)
            .filter(|(d, _)| d.is_finite())
            .map(|(&d, &p)| (d, p))
            .min_by(|a, b| a.partial_cmp(b).expect("NaN-free"))
            .map(|(_, p)| p)
    }

    /// Deterministic pseudo-random f32 distances with heavy duplication
    /// (quantized to 8 levels), so ties are common.
    fn row(len: usize, salt: u64) -> Vec<f32> {
        (0..len as u64)
            .map(|i| {
                let h = (i ^ salt)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17);
                (h % 8) as f32 * 125.0
            })
            .collect()
    }

    #[test]
    fn empty_row_is_none() {
        assert_eq!(min_f32(&[]), f32::INFINITY);
        assert_eq!(nearest_in(&[], &[]), None);
    }

    #[test]
    fn all_excluded_is_none() {
        let dists = [f32::INFINITY; 11];
        let members: Vec<PeerId> = (0..11).map(PeerId).collect();
        assert_eq!(nearest_in(&dists, &members), None);
    }

    /// Satellite regression test: every row length 0..64 (all
    /// `chunks_exact` remainder shapes), member ids deliberately
    /// shuffled so lowest-PeerId ≠ lowest-index, compared against the
    /// naive scalar loop.
    #[test]
    fn matches_naive_scalar_on_all_remainder_shapes() {
        for len in 0..64usize {
            for salt in 0..8u64 {
                let mut dists = row(len, salt);
                // Reverse ids: index 0 holds the HIGHEST id, so any
                // first-index-wins shortcut diverges from lowest-id.
                let members: Vec<PeerId> =
                    (0..len as u32).rev().map(PeerId).collect();
                assert_eq!(
                    nearest_in(&dists, &members),
                    naive(&dists, &members),
                    "len={len} salt={salt}"
                );
                // And with exclusions sprinkled in.
                for i in (0..len).step_by(3) {
                    dists[i] = f32::INFINITY;
                }
                assert_eq!(
                    nearest_in(&dists, &members),
                    naive(&dists, &members),
                    "len={len} salt={salt} (with exclusions)"
                );
            }
        }
    }

    /// Exhaustive tie-breaking: an all-equal row of every length must
    /// return the lowest id regardless of where it sits.
    #[test]
    fn all_tied_rows_pick_lowest_id() {
        for len in 1..64usize {
            let dists = vec![42.0f32; len];
            // Lowest id planted at every possible position.
            for pos in 0..len {
                let members: Vec<PeerId> = (0..len)
                    .map(|i| {
                        if i == pos {
                            PeerId(0)
                        } else {
                            PeerId(i as u32 + 1)
                        }
                    })
                    .collect();
                assert_eq!(
                    nearest_in(&dists, &members),
                    Some(PeerId(0)),
                    "len={len} pos={pos}"
                );
            }
        }
    }

    #[test]
    fn min_in_remainder_tail_is_found() {
        // 9 entries: one full lane chunk + a 1-element tail holding the min.
        let mut dists = vec![100.0f32; 9];
        dists[8] = 1.0;
        let members: Vec<PeerId> = (0..9).map(PeerId).collect();
        assert_eq!(min_f32(&dists), 1.0);
        assert_eq!(nearest_in(&dists, &members), Some(PeerId(8)));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_panic() {
        nearest_in(&[1.0], &[]);
    }
}
