//! Bounded RTT drift as an overlay over any latency backend.
//!
//! Churn scenarios let peer latencies wander over simulated time. The
//! model is *additive per-peer offsets*: every peer carries an access
//! penalty `off(p) ≥ 0` µs (last-mile congestion, load) and the
//! drifted RTT is `rtt'(a, b) = rtt(a, b) + off(a) + off(b)` (zero on
//! the diagonal). Two properties make this the right shape for the
//! reproduction:
//!
//! * it preserves symmetry and the zero diagonal, so [`DriftedWorld`]
//!   is a lawful [`WorldStore`] over any backend;
//! * a target's offset shifts *all* of its member distances by the
//!   same constant, so only the **members'** offsets can change who is
//!   nearest — which is exactly what makes the incremental
//!   [`crate::NearestCache`] maintenance in `np-core`'s churn driver
//!   sound: redrawing `off(p)` perturbs only peer `p`'s column.
//!
//! All arithmetic is exact integer µs; no float accumulates.

use crate::matrix::PeerId;
use crate::world::WorldStore;
use np_util::Micros;

/// A latency backend plus per-peer additive drift offsets (µs).
///
/// Borrows both the inner store and the offset table, so churn drivers
/// can rebind one wrapper per epoch at zero copy cost.
pub struct DriftedWorld<'w> {
    inner: &'w dyn WorldStore,
    offsets_us: &'w [u64],
}

impl<'w> DriftedWorld<'w> {
    /// Wrap `inner` with `offsets_us` (one entry per peer id; must
    /// cover `inner.len()`).
    pub fn new(inner: &'w dyn WorldStore, offsets_us: &'w [u64]) -> DriftedWorld<'w> {
        assert!(
            offsets_us.len() >= inner.len(),
            "offset table covers {} of {} peers",
            offsets_us.len(),
            inner.len()
        );
        DriftedWorld { inner, offsets_us }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &'w dyn WorldStore {
        self.inner
    }

    /// Peer `p`'s current additive offset in µs.
    pub fn offset_us(&self, p: PeerId) -> u64 {
        self.offsets_us[p.0 as usize]
    }
}

impl WorldStore for DriftedWorld<'_> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        self.inner.rtt(a, b)
            + Micros::from_us(self.offsets_us[a.0 as usize] + self.offsets_us[b.0 as usize])
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes() + std::mem::size_of_val(self.offsets_us)
    }

    // Deliberately no `shard_view` override: drifted distances violate
    // the shard store's hub-sum reconstruction, so shard-local fast
    // paths must not engage through this wrapper (the default `None`
    // keeps them off).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LatencyMatrix;

    fn line(n: usize) -> LatencyMatrix {
        LatencyMatrix::build(n, |a, b| {
            Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
        })
    }

    #[test]
    fn drift_is_additive_symmetric_zero_diagonal() {
        let m = line(6);
        let off = vec![0u64, 100, 0, 250, 0, 0];
        let d = DriftedWorld::new(&m, &off);
        assert_eq!(d.len(), 6);
        assert_eq!(d.rtt(PeerId(1), PeerId(1)), Micros::ZERO);
        assert_eq!(
            d.rtt(PeerId(1), PeerId(3)),
            Micros::from_ms_u64(2) + Micros::from_us(350)
        );
        assert_eq!(d.rtt(PeerId(1), PeerId(3)), d.rtt(PeerId(3), PeerId(1)));
        // Zero-offset pairs read through unchanged.
        assert_eq!(d.rtt(PeerId(0), PeerId(4)), m.rtt(PeerId(0), PeerId(4)));
    }

    #[test]
    fn zero_offsets_are_an_identity_wrapper() {
        let m = line(8);
        let off = vec![0u64; 8];
        let d = DriftedWorld::new(&m, &off);
        let members: Vec<PeerId> = (0..8).map(PeerId).collect();
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(d.rtt(PeerId(a), PeerId(b)), m.rtt(PeerId(a), PeerId(b)));
            }
            assert_eq!(
                d.nearest_within(PeerId(a), &members),
                m.nearest_within(PeerId(a), &members)
            );
        }
    }

    #[test]
    fn member_offset_can_change_the_nearest() {
        let m = line(4);
        // Peer 1 is target 0's nearest until its offset penalises it
        // past peer 2.
        let calm = vec![0u64; 4];
        let loaded = vec![0u64, 1_500, 0, 0];
        let members = [PeerId(1), PeerId(2), PeerId(3)];
        assert_eq!(
            DriftedWorld::new(&m, &calm).nearest_within(PeerId(0), &members),
            Some(PeerId(1))
        );
        assert_eq!(
            DriftedWorld::new(&m, &loaded).nearest_within(PeerId(0), &members),
            Some(PeerId(2))
        );
    }

    #[test]
    fn no_shard_view_leaks_through() {
        let m = line(4);
        let off = vec![0u64; 4];
        let d = DriftedWorld::new(&m, &off);
        assert!(d.shard_view().is_none());
    }
}
