//! Block-compressed latency worlds: dense intra-shard blocks plus a
//! hub-summary for inter-shard distances.
//!
//! The dense matrix is quadratic: 25 MB at the paper's 2.5 k peers but
//! 40 GB at 100 k. The surveyed P2P-management literature's standard
//! answer is hierarchical decomposition, and the paper's own §4 worlds
//! are *already* hierarchical — peers hang off end-networks, which hang
//! off cluster hubs, and every inter-cluster path is
//! `up + hub-to-hub + down`. [`ShardedWorld`] stores exactly that
//! factorization:
//!
//! * peers are partitioned into **shards** (cluster assignments);
//! * each shard keeps a **dense block** of exact intra-shard RTTs
//!   (built with the same row-blocked parallel fill as
//!   [`LatencyMatrix::build_par`]);
//! * inter-shard RTTs come from a **hub summary** — an `S×S` hub-to-hub
//!   matrix plus a per-peer hub offset:
//!   `rtt(a, b) = offset[a] + hub[shard(a)][shard(b)] + offset[b]`.
//!
//! Storage is `Σ mₛ² + S² + O(n)` floats instead of `n²`: a 100 k-peer
//! world in 1,000 shards of 100 is ≈44 MB instead of 40 GB.
//!
//! # Exact vs approximate
//!
//! The hub summary is a *model*. Whether it is exact depends on where
//! the summary came from:
//!
//! * **Shard count 1** — the world is one dense block; every query is
//!   bit-identical to [`LatencyMatrix`] (property-tested in
//!   `tests/world_equivalence.rs`).
//! * **Intra-shard queries** — always exact, any shard count: they read
//!   the dense block.
//! * **Hub-and-spoke worlds** (`ClusterWorld::to_sharded`) — exact
//!   everywhere, because the generator's inter-cluster rule *is* the
//!   hub summary: the same `u64` microsecond sum, reassembled.
//! * **Arbitrary matrices** ([`ShardedWorld::compress`]) — inter-shard
//!   distances are approximated through per-shard medoid hubs:
//!   `d(a,b) ≈ d(a,hₐ) + d(hₐ,h_b) + d(b,h_b)`. In a metric space this
//!   overestimates by at most `2·(d(a,hₐ) + d(b,h_b))` (two triangle
//!   detours); on hub-and-spoke worlds the error is exactly
//!   `2·(offset(hₐ) + offset(h_b))` — the medoids' own spoke latencies,
//!   counted twice.
//!
//! Inter-shard sums are computed in `u64` microseconds from the stored
//! `f32` components, so they are deterministic and (for the < 2²⁴ µs
//! latencies of every generated world) free of float re-rounding.

use crate::matrix::{LatencyMatrix, PeerId};
use crate::world::{ShardView, WorldStore};
use np_util::parallel::par_for_rows;
use np_util::Micros;

/// One shard: its member peers (ascending id) and their dense RTT block.
#[derive(Debug, Clone)]
struct ShardBlock {
    members: Vec<PeerId>,
    /// Row-major `m×m` µs-as-f32, symmetric, zero diagonal.
    data: Vec<f32>,
}

/// A block-compressed latency world. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct ShardedWorld {
    n: usize,
    shards: Vec<ShardBlock>,
    /// Peer → shard index.
    shard_of: Vec<u32>,
    /// Peer → row index within its shard's block.
    local_of: Vec<u32>,
    /// `S×S` hub-to-hub RTTs, µs-as-f32, symmetric, zero diagonal.
    hub_rtt: Vec<f32>,
    /// Peer → latency to its shard hub, µs-as-f32.
    offset: Vec<f32>,
}

impl ShardedWorld {
    /// Sentinel shard id for peers that match **no** cluster (spills):
    /// [`ShardedWorld::compress`] routes each such peer into its own
    /// singleton overflow shard instead of producing out-of-bounds
    /// shard indices. [`ShardedWorld::build_par`] rejects the sentinel
    /// outright — it has no matrix to derive an overflow hub from.
    pub const NO_SHARD: u32 = u32::MAX;

    /// Build from a shard assignment, a hub summary, and an exact
    /// pairwise latency function (consulted only for intra-shard
    /// pairs, once per unordered pair — the same discipline as
    /// [`LatencyMatrix::build_par`]).
    ///
    /// `shard_of[p]` is peer `p`'s shard; shard ids must cover
    /// `0..S` where `S` is the maximum id + 1. `hub_rtt` is the
    /// row-major `S×S` hub matrix in µs; `offset[p]` is peer `p`'s
    /// hub latency in µs. Each shard's block is filled row-blocked on
    /// `threads` workers, bit-identically at any thread count.
    ///
    /// # Panics
    /// Panics when `offset` or `hub_rtt` disagree with the assignment's
    /// dimensions.
    pub fn build_par(
        shard_of: &[u32],
        hub_rtt: Vec<f32>,
        offset: Vec<f32>,
        threads: usize,
        rtt: impl Fn(PeerId, PeerId) -> Micros + Sync,
    ) -> ShardedWorld {
        let n = shard_of.len();
        assert_eq!(offset.len(), n, "one hub offset per peer");
        assert!(
            shard_of.iter().all(|&s| s != ShardedWorld::NO_SHARD),
            "NO_SHARD spills are resolved by ShardedWorld::compress, not build_par"
        );
        let n_shards = shard_of.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        assert_eq!(
            hub_rtt.len(),
            n_shards * n_shards,
            "hub matrix must be {n_shards}×{n_shards}"
        );
        let mut membership: Vec<Vec<PeerId>> = vec![Vec::new(); n_shards];
        let mut local_of = vec![0u32; n];
        for i in 0..n {
            let s = shard_of[i] as usize;
            local_of[i] = membership[s].len() as u32;
            membership[s].push(PeerId(i as u32));
        }
        let shards: Vec<ShardBlock> = membership
            .into_iter()
            .map(|members| {
                let m = members.len();
                let mut data = vec![0.0f32; m * m];
                // Row-blocked upper-triangle fill, mirrored after — the
                // exact `LatencyMatrix::build_par` recipe, so a
                // single-shard world reproduces the dense bytes.
                par_for_rows(threads, &mut data, m.max(1), |i, row| {
                    for (j, cell) in row.iter_mut().enumerate().skip(i + 1) {
                        *cell = rtt(members[i], members[j]).as_us() as f32;
                    }
                });
                for i in 0..m {
                    for j in (i + 1)..m {
                        data[j * m + i] = data[i * m + j];
                    }
                }
                ShardBlock { members, data }
            })
            .collect();
        ShardedWorld {
            n,
            shards,
            shard_of: shard_of.to_vec(),
            local_of,
            hub_rtt,
            offset,
        }
    }

    /// The degenerate single-shard world: one dense block covering all
    /// `n` peers, a trivial hub summary. Bit-identical to
    /// [`LatencyMatrix::build_par`] over the same `rtt`.
    pub fn single_shard(
        n: usize,
        threads: usize,
        rtt: impl Fn(PeerId, PeerId) -> Micros + Sync,
    ) -> ShardedWorld {
        ShardedWorld::build_par(&vec![0u32; n], vec![0.0], vec![0.0; n], threads, rtt)
    }

    /// Compress an existing dense matrix under a shard assignment,
    /// deriving the hub summary from the matrix itself: each shard's
    /// hub is its **medoid** (the member minimising total intra-shard
    /// RTT, ties by lowest id), `offset[p] = rtt(p, hub)`, and
    /// hub-to-hub RTTs are read straight from the matrix. Intra-shard
    /// queries stay exact; inter-shard distances carry the triangle
    /// detour error bounded in the module docs.
    ///
    /// # Spills
    ///
    /// A peer assigned [`ShardedWorld::NO_SHARD`] (it matched no
    /// cluster — e.g. an np-cluster assignment that left it
    /// unclassified) is routed into its own **singleton overflow
    /// shard**: the peer is its own hub with offset 0, and its
    /// hub-to-hub row is read from the matrix like any other. Overflow
    /// shards are appended after the real clusters in ascending peer-id
    /// order.
    ///
    /// **Error bound:** a spill's distances are *better* approximated
    /// than a regular inter-shard pair's — `d(spill, b) = d(spill, h_b)
    /// + d(b, h_b)`, a **single** triangle detour, overestimating by at
    /// most `2·d(b, h_b)` (the other endpoint's detour only; the
    /// spill's own detour term is zero). Spill-to-spill distances are
    /// exact. The price is storage: each spill adds one hub row, so
    /// `S² ` grows as `(S + spills)²`.
    pub fn compress(matrix: &LatencyMatrix, shard_of: &[u32], threads: usize) -> ShardedWorld {
        assert_eq!(shard_of.len(), matrix.len(), "one shard id per peer");
        let n = matrix.len();
        let real_shards = shard_of
            .iter()
            .filter(|&&s| s != ShardedWorld::NO_SHARD)
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0);
        // Remap spills onto appended singleton shards (ascending peer
        // id), so the stored assignment is dense again.
        let mut next_overflow = real_shards as u32;
        let shard_of: Vec<u32> = shard_of
            .iter()
            .map(|&s| {
                if s == ShardedWorld::NO_SHARD {
                    let id = next_overflow;
                    next_overflow += 1;
                    id
                } else {
                    s
                }
            })
            .collect();
        let n_shards = (next_overflow as usize).max(real_shards).max(1);
        let mut membership: Vec<Vec<PeerId>> = vec![Vec::new(); n_shards];
        for i in 0..n {
            membership[shard_of[i] as usize].push(PeerId(i as u32));
        }
        let hubs: Vec<Option<PeerId>> = membership
            .iter()
            .map(|members| {
                members
                    .iter()
                    .copied()
                    .min_by_key(|&c| {
                        let total: u64 = members.iter().map(|&m| matrix.rtt(c, m).as_us()).sum();
                        (total, c)
                    })
            })
            .collect();
        let mut hub_rtt = vec![0.0f32; n_shards * n_shards];
        for a in 0..n_shards {
            for b in (a + 1)..n_shards {
                if let (Some(ha), Some(hb)) = (hubs[a], hubs[b]) {
                    let v = matrix.rtt(ha, hb).as_us() as f32;
                    hub_rtt[a * n_shards + b] = v;
                    hub_rtt[b * n_shards + a] = v;
                }
            }
        }
        let offset: Vec<f32> = (0..n)
            .map(|i| {
                let hub = hubs[shard_of[i] as usize].expect("peer's own shard is non-empty");
                matrix.rtt(PeerId(i as u32), hub).as_us() as f32
            })
            .collect();
        ShardedWorld::build_par(&shard_of, hub_rtt, offset, threads, |a, b| matrix.rtt(a, b))
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a peer belongs to.
    #[inline]
    pub fn shard(&self, p: PeerId) -> usize {
        self.shard_of[p.idx()] as usize
    }

    /// Members of one shard, ascending id.
    pub fn shard_members(&self, shard: usize) -> &[PeerId] {
        &self.shards[shard].members
    }

    /// Size of the largest dense block (the compression's knob: memory
    /// and per-query scan cost are quadratic and linear in this).
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(|s| s.members.len()).max().unwrap_or(0)
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.n as u32).map(PeerId)
    }

    /// Check block symmetry/zero-diagonal/finiteness and hub-summary
    /// sanity; used by tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        for (s, blk) in self.shards.iter().enumerate() {
            let m = blk.members.len();
            for i in 0..m {
                if blk.data[i * m + i] != 0.0 {
                    return Err(format!("shard {s}: non-zero diagonal at {i}"));
                }
                for j in (i + 1)..m {
                    let (a, b) = (blk.data[i * m + j], blk.data[j * m + i]);
                    if a != b {
                        return Err(format!("shard {s}: asymmetry at ({i},{j}): {a} vs {b}"));
                    }
                    if a < 0.0 || !a.is_finite() {
                        return Err(format!("shard {s}: invalid latency at ({i},{j}): {a}"));
                    }
                }
            }
        }
        let ns = self.shards.len();
        for a in 0..ns {
            if self.hub_rtt[a * ns + a] != 0.0 {
                return Err(format!("non-zero hub diagonal at {a}"));
            }
            for b in (a + 1)..ns {
                let (x, y) = (self.hub_rtt[a * ns + b], self.hub_rtt[b * ns + a]);
                if x != y {
                    return Err(format!("hub asymmetry at ({a},{b}): {x} vs {y}"));
                }
                if x < 0.0 || !x.is_finite() {
                    return Err(format!("invalid hub latency at ({a},{b}): {x}"));
                }
            }
        }
        if let Some(bad) = self.offset.iter().find(|o| !o.is_finite() || **o < 0.0) {
            return Err(format!("invalid hub offset {bad}"));
        }
        Ok(())
    }
}

impl ShardView for ShardedWorld {
    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, p: PeerId) -> usize {
        self.shard_of[p.idx()] as usize
    }

    fn shard_members(&self, shard: usize) -> &[PeerId] {
        &self.shards[shard].members
    }

    #[inline]
    fn hub_offset_us(&self, p: PeerId) -> u64 {
        self.offset[p.idx()] as u64
    }

    #[inline]
    fn hub_rtt_us(&self, a: usize, b: usize) -> u64 {
        self.hub_rtt[a * self.shards.len() + b] as u64
    }

    fn hub_peer(&self, shard: usize) -> Option<PeerId> {
        self.shards[shard]
            .members
            .iter()
            .copied()
            .min_by_key(|&m| (self.offset[m.idx()] as u64, m))
    }
}

impl WorldStore for ShardedWorld {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        let (sa, sb) = (self.shard_of[a.idx()] as usize, self.shard_of[b.idx()] as usize);
        if sa == sb {
            let blk = &self.shards[sa];
            let m = blk.members.len();
            Micros(blk.data[self.local_of[a.idx()] as usize * m + self.local_of[b.idx()] as usize] as u64)
        } else {
            // u64 sum of the whole-µs components: deterministic, no
            // float re-rounding of the reassembled path.
            Micros(
                self.offset[a.idx()] as u64
                    + self.hub_rtt[sa * self.shards.len() + sb] as u64
                    + self.offset[b.idx()] as u64,
            )
        }
    }

    fn approx_bytes(&self) -> usize {
        let blocks: usize = self
            .shards
            .iter()
            .map(|s| s.data.len() * 4 + s.members.len() * 4)
            .sum();
        blocks + self.hub_rtt.len() * 4 + (self.offset.len() + self.shard_of.len() + self.local_of.len()) * 4
    }

    fn shard_view(&self) -> Option<&dyn ShardView> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-level synthetic hub world: shard = id / 4, offset
    /// `1 + id%4` ms, hub-to-hub `10·|sa−sb|` ms, intra-shard exact
    /// star paths. Mirrors the §4 construction without np-topology
    /// (which depends on this crate).
    fn star_rtt(a: PeerId, b: PeerId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        let (sa, sb) = (a.0 / 4, b.0 / 4);
        let off = |p: PeerId| Micros::from_ms_u64(1 + (p.0 % 4) as u64);
        if sa == sb {
            off(a) + off(b)
        } else {
            off(a) + Micros::from_ms_u64(10 * (sa as i64 - sb as i64).unsigned_abs()) + off(b)
        }
    }

    fn star_world(n_shards: u32, threads: usize) -> ShardedWorld {
        let n = (n_shards * 4) as usize;
        let shard_of: Vec<u32> = (0..n as u32).map(|i| i / 4).collect();
        let s = n_shards as usize;
        let mut hub = vec![0.0f32; s * s];
        for a in 0..s {
            for b in 0..s {
                hub[a * s + b] = (10_000 * (a as i64 - b as i64).unsigned_abs()) as f32;
            }
        }
        let offset: Vec<f32> = (0..n as u32).map(|i| (1_000 + 1_000 * (i % 4)) as f32).collect();
        ShardedWorld::build_par(&shard_of, hub, offset, threads, star_rtt)
    }

    #[test]
    fn reassembles_the_generating_rule_exactly() {
        let w = star_world(3, 2);
        w.validate().expect("valid");
        assert_eq!(w.len(), 12);
        assert_eq!(w.n_shards(), 3);
        assert_eq!(w.max_shard_len(), 4);
        for a in w.peers() {
            for b in w.peers() {
                assert_eq!(w.rtt(a, b), star_rtt(a, b), "rtt({a},{b})");
            }
        }
    }

    #[test]
    fn single_shard_matches_dense_bitwise() {
        let n = 37;
        let dense = LatencyMatrix::build_par(n, 3, star_rtt);
        let single = ShardedWorld::single_shard(n, 3, star_rtt);
        single.validate().expect("valid");
        assert_eq!(single.n_shards(), 1);
        let members: Vec<PeerId> = dense.peers().collect();
        for a in dense.peers() {
            for b in dense.peers() {
                assert_eq!(single.rtt(a, b), dense.rtt(a, b));
            }
            assert_eq!(
                WorldStore::nearest_within(&single, a, &members),
                dense.nearest_within(a, &members)
            );
        }
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let serial = star_world(4, 1);
        for threads in [2, 8] {
            let par = star_world(4, threads);
            for a in serial.peers() {
                for b in serial.peers() {
                    assert_eq!(serial.rtt(a, b), par.rtt(a, b), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn compress_keeps_intra_shard_exact_and_overestimates_inter() {
        let n = 16usize;
        let dense = LatencyMatrix::build(n, star_rtt);
        let shard_of: Vec<u32> = (0..n as u32).map(|i| i / 4).collect();
        let w = ShardedWorld::compress(&dense, &shard_of, 2);
        w.validate().expect("valid");
        for a in dense.peers() {
            for b in dense.peers() {
                if w.shard(a) == w.shard(b) {
                    assert_eq!(w.rtt(a, b), dense.rtt(a, b), "intra-shard must be exact");
                } else {
                    // Medoid-detour estimate: never an underestimate in
                    // a metric space, off by exactly the medoids'
                    // doubled spoke latencies in this star world.
                    assert!(w.rtt(a, b) >= dense.rtt(a, b), "underestimated {a}->{b}");
                    assert!(
                        w.rtt(a, b) <= dense.rtt(a, b) + Micros::from_ms_u64(4),
                        "error beyond the 2·(1 ms + 1 ms) medoid bound for {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_is_subquadratic() {
        let sharded = star_world(16, 1); // 64 peers in 16 shards
        let dense_bytes = 64 * 64 * 4;
        assert!(
            sharded.approx_bytes() < dense_bytes / 2,
            "sharded {} bytes vs dense {dense_bytes}",
            sharded.approx_bytes()
        );
    }

    #[test]
    fn empty_world_is_consistent() {
        let w = ShardedWorld::single_shard(0, 4, star_rtt);
        assert!(w.is_empty());
        assert_eq!(w.n_shards(), 1);
        assert_eq!(w.max_shard_len(), 0);
        w.validate().expect("valid");
    }

    #[test]
    #[should_panic(expected = "hub matrix")]
    fn wrong_hub_dimensions_panic() {
        ShardedWorld::build_par(&[0, 1], vec![0.0], vec![0.0, 0.0], 1, star_rtt);
    }

    #[test]
    #[should_panic(expected = "NO_SHARD")]
    fn build_par_rejects_the_spill_sentinel() {
        ShardedWorld::build_par(
            &[0, ShardedWorld::NO_SHARD],
            vec![0.0],
            vec![0.0, 0.0],
            1,
            star_rtt,
        );
    }

    #[test]
    fn shard_view_reassembles_rtt_and_names_hub_peers() {
        let w = star_world(3, 2);
        let view: &dyn ShardView = &w;
        assert_eq!(ShardView::n_shards(view), 3);
        for p in w.peers() {
            assert_eq!(ShardView::shard_of(view, p), (p.0 / 4) as usize);
        }
        assert_eq!(ShardView::shard_members(view, 1), &[PeerId(4), PeerId(5), PeerId(6), PeerId(7)]);
        // Inter-shard rtt must reassemble from the view's components
        // exactly as WorldStore::rtt sums them.
        for a in w.peers() {
            for b in w.peers() {
                let (sa, sb) = (view.shard_of(a), view.shard_of(b));
                if sa != sb {
                    let sum = view.hub_offset_us(a) + view.hub_rtt_us(sa, sb) + view.hub_offset_us(b);
                    assert_eq!(Micros(sum), w.rtt(a, b), "view sum diverged for ({a},{b})");
                }
            }
        }
        // Hub peer: minimum offset (1 ms for id % 4 == 0), ties by id.
        assert_eq!(view.hub_peer(0), Some(PeerId(0)));
        assert_eq!(view.hub_peer(2), Some(PeerId(8)));
        // The dense matrix has no shard structure.
        let dense = LatencyMatrix::build(8, star_rtt);
        assert!(WorldStore::shard_view(&dense).is_none());
        assert!(WorldStore::shard_view(&w).is_some());
    }

    #[test]
    fn compress_routes_spills_into_singleton_overflow_shards() {
        // 16-peer star world: shards 0..2 assigned normally, the last
        // four peers match no cluster (NO_SHARD).
        let n = 16usize;
        let dense = LatencyMatrix::build(n, star_rtt);
        let shard_of: Vec<u32> = (0..n as u32)
            .map(|i| if i < 12 { i / 4 } else { ShardedWorld::NO_SHARD })
            .collect();
        let w = ShardedWorld::compress(&dense, &shard_of, 2);
        w.validate().expect("valid");
        // 3 real shards + one singleton per spill, in peer-id order.
        assert_eq!(w.n_shards(), 7);
        for (k, spill) in (12u32..16).enumerate() {
            let s = 3 + k;
            assert_eq!(w.shard(PeerId(spill)), s);
            assert_eq!(w.shard_members(s), &[PeerId(spill)]);
            // A singleton's hub is the peer itself, offset zero.
            assert_eq!(ShardView::hub_peer(&w, s), Some(PeerId(spill)));
            assert_eq!(ShardView::hub_offset_us(&w, PeerId(spill)), 0);
        }
        for a in dense.peers() {
            for b in dense.peers() {
                if w.shard(a) == w.shard(b) {
                    assert_eq!(w.rtt(a, b), dense.rtt(a, b), "intra-shard must stay exact");
                } else {
                    // One detour per non-spill endpoint: never an
                    // underestimate, and bounded by the endpoints' hub
                    // detours (zero for spills).
                    let hub_detour = |p: PeerId| {
                        let hub = ShardView::hub_peer(&w, w.shard(p)).expect("non-empty");
                        dense.rtt(p, hub)
                    };
                    let bound = dense.rtt(a, b) + hub_detour(a).scale(2.0) + hub_detour(b).scale(2.0);
                    assert!(w.rtt(a, b) >= dense.rtt(a, b), "underestimated {a}->{b}");
                    assert!(w.rtt(a, b) <= bound, "error beyond the detour bound for {a}->{b}");
                }
            }
        }
        // Spill-to-spill pairs are hub-to-hub reads: exact.
        for a in 12u32..16 {
            for b in 12u32..16 {
                assert_eq!(w.rtt(PeerId(a), PeerId(b)), dense.rtt(PeerId(a), PeerId(b)));
            }
        }
    }
}
