//! Weighted graphs and shortest paths.
//!
//! Paper §5 builds "an approximate adjacency matrix" from traceroute data —
//! Azureus peers plus the routers seen on the way, with the latencies
//! between them — and runs "the Dijkstra algorithm over this adjacency
//! matrix to obtain a set of closest peers for each peer". This module is
//! that machinery: an adjacency-list graph over abstract node indices with
//! full, bounded (radius-limited) and path-recovering Dijkstra variants.
//! It is also used for hub-level routing inside the Internet model.

use np_util::Micros;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Node index in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An undirected weighted graph stored as adjacency lists.
///
/// Edges carry one-way latencies; parallel edges are allowed (Dijkstra
/// simply never prefers the longer one), which keeps ingestion from noisy
/// traceroute data simple — the paper's adjacency matrix has the same
/// property.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<(NodeId, Micros)>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with `n` nodes.
    pub fn with_nodes(n: usize) -> Graph {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges added.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Append a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId((self.adj.len() - 1) as u32)
    }

    /// Add an undirected edge with weight `w`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, w: Micros) {
        assert!(a.idx() < self.adj.len() && b.idx() < self.adj.len());
        self.adj[a.idx()].push((b, w));
        self.adj[b.idx()].push((a, w));
        self.edge_count += 1;
    }

    /// Neighbours of `n` with edge weights.
    pub fn neighbours(&self, n: NodeId) -> &[(NodeId, Micros)] {
        &self.adj[n.idx()]
    }

    /// Single-source Dijkstra, bounded by `radius` (use
    /// [`Micros::INFINITY`] for an unbounded run).
    ///
    /// Returns `(dist, parent)` arrays; unreachable nodes (or nodes beyond
    /// the radius) have `dist == Micros::INFINITY` and `parent == None`.
    ///
    /// The bounded form is what Figure 10/11 need: the paper only studies
    /// peer pairs within 10 ms, so the search stops expanding past the
    /// radius and stays cheap even on the 20 k-peer world.
    pub fn dijkstra(&self, src: NodeId, radius: Micros) -> ShortestPaths {
        let n = self.adj.len();
        let mut dist = vec![Micros::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(Micros, NodeId)>> = BinaryHeap::new();
        dist[src.idx()] = Micros::ZERO;
        heap.push(Reverse((Micros::ZERO, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u.idx()] {
                continue; // stale entry
            }
            if d > radius {
                break; // everything else is farther
            }
            for &(v, w) in &self.adj[u.idx()] {
                let nd = d + w;
                if nd < dist[v.idx()] && nd <= radius {
                    dist[v.idx()] = nd;
                    parent[v.idx()] = Some(u);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        ShortestPaths { src, dist, parent }
    }

    /// Radius-bounded Dijkstra with *sparse* state: costs are
    /// proportional to the visited neighbourhood, not to graph size.
    ///
    /// This is the workhorse of the Figure 10/11 pipelines, which run a
    /// ≤10 ms search from each of ~20 k peers over a ~50 k-node
    /// traceroute-derived graph — dense per-source arrays would dominate
    /// the runtime there.
    ///
    /// Returns `(node, dist, hops)` for every node within `radius`
    /// (excluding the source), sorted by node id — callers aggregate
    /// into `PaperMetrics`, so the order is part of the determinism
    /// contract.
    pub fn dijkstra_local(&self, src: NodeId, radius: Micros) -> Vec<(NodeId, Micros, u32)> {
        use std::collections::hash_map::Entry;
        use std::collections::HashMap;
        let mut best: HashMap<NodeId, (Micros, u32)> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(Micros, u32, NodeId)>> = BinaryHeap::new();
        best.insert(src, (Micros::ZERO, 0));
        heap.push(Reverse((Micros::ZERO, 0, src)));
        while let Some(Reverse((d, h, u))) = heap.pop() {
            match best.get(&u) {
                Some(&(bd, _)) if d > bd => continue, // stale
                _ => {}
            }
            for &(v, w) in &self.adj[u.idx()] {
                let nd = d + w;
                if nd > radius {
                    continue;
                }
                let nh = h + 1;
                match best.entry(v) {
                    Entry::Occupied(mut o) => {
                        if nd < o.get().0 {
                            o.insert((nd, nh));
                            heap.push(Reverse((nd, nh, v)));
                        }
                    }
                    Entry::Vacant(slot) => {
                        slot.insert((nd, nh));
                        heap.push(Reverse((nd, nh, v)));
                    }
                }
            }
        }
        let mut out: Vec<(NodeId, Micros, u32)> = best
            .into_iter() // np-lint: allow(D1) — collected then sorted by NodeId below; order cannot reach results
            .filter(|&(n, _)| n != src)
            .map(|(n, (d, h))| (n, d, h))
            .collect();
        out.sort_unstable_by_key(|&(n, _, _)| n);
        out
    }

    /// Shortest-path distance between two nodes (unbounded Dijkstra,
    /// early-exit on reaching `dst`).
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Micros {
        if src == dst {
            return Micros::ZERO;
        }
        let n = self.adj.len();
        let mut dist = vec![Micros::INFINITY; n];
        let mut heap: BinaryHeap<Reverse<(Micros, NodeId)>> = BinaryHeap::new();
        dist[src.idx()] = Micros::ZERO;
        heap.push(Reverse((Micros::ZERO, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if u == dst {
                return d;
            }
            if d > dist[u.idx()] {
                continue;
            }
            for &(v, w) in &self.adj[u.idx()] {
                let nd = d + w;
                if nd < dist[v.idx()] {
                    dist[v.idx()] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        Micros::INFINITY
    }
}

/// Result of a Dijkstra run: distances and the shortest-path tree.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    src: NodeId,
    dist: Vec<Micros>,
    parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Distance from the source ([`Micros::INFINITY`] if unreached).
    pub fn dist(&self, n: NodeId) -> Micros {
        self.dist[n.idx()]
    }

    /// Whether `n` was reached within the radius.
    pub fn reached(&self, n: NodeId) -> bool {
        !self.dist[n.idx()].is_infinite()
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// Nodes reached within the radius, excluding the source.
    pub fn reached_nodes(&self) -> impl Iterator<Item = (NodeId, Micros)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(move |&(i, d)| !d.is_infinite() && i != self.src.idx())
            .map(|(i, &d)| (NodeId(i as u32), d))
    }

    /// The path from the source to `n` (inclusive of both endpoints), or
    /// `None` if unreached. The *hop count* of Figure 10 is
    /// `path.len() - 1`.
    pub fn path_to(&self, n: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(n) {
            return None;
        }
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.parent[cur.idx()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.src, "path terminates at source");
        path.reverse();
        Some(path)
    }

    /// Number of edges on the shortest path to `n`, or `None` if unreached.
    pub fn hops_to(&self, n: NodeId) -> Option<usize> {
        self.path_to(n).map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A "last-hop star": hub node 0, spokes 1..=4 at 5 ms each, plus a
    /// LAN edge between spokes 1 and 2 at 0.1 ms (same end-network).
    fn star() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 1..=4u32 {
            g.add_edge(NodeId(0), NodeId(i), Micros::from_ms(5.0));
        }
        g.add_edge(NodeId(1), NodeId(2), Micros::from_us(100));
        g
    }

    #[test]
    fn distances_through_hub_vs_lan() {
        let g = star();
        // 3 -> 4 must cross the hub: 10 ms.
        assert_eq!(
            g.distance(NodeId(3), NodeId(4)),
            Micros::from_ms_u64(10)
        );
        // 1 -> 2 takes the LAN edge, not the hub.
        assert_eq!(g.distance(NodeId(1), NodeId(2)), Micros::from_us(100));
        assert_eq!(g.distance(NodeId(2), NodeId(2)), Micros::ZERO);
    }

    #[test]
    fn bounded_dijkstra_stops_at_radius() {
        let g = star();
        let sp = g.dijkstra(NodeId(1), Micros::from_ms(6.0));
        assert!(sp.reached(NodeId(2)), "LAN neighbour inside radius");
        assert!(sp.reached(NodeId(0)), "hub at 5 ms inside radius");
        assert!(!sp.reached(NodeId(3)), "10 ms spoke outside 6 ms radius");
    }

    #[test]
    fn paths_and_hops() {
        let g = star();
        let sp = g.dijkstra(NodeId(3), Micros::INFINITY);
        let path = sp.path_to(NodeId(4)).expect("reached");
        assert_eq!(path, vec![NodeId(3), NodeId(0), NodeId(4)]);
        assert_eq!(sp.hops_to(NodeId(4)), Some(2));
        assert_eq!(sp.hops_to(NodeId(3)), Some(0));
        // 3 -> 2 goes via the hub (5+5), not via 1 (5+5+0.1).
        assert_eq!(sp.path_to(NodeId(2)).expect("reached").len(), 3);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = star();
        let island = g.add_node();
        let sp = g.dijkstra(NodeId(0), Micros::INFINITY);
        assert!(!sp.reached(island));
        assert_eq!(sp.path_to(island), None);
        assert_eq!(g.distance(NodeId(0), island), Micros::INFINITY);
    }

    #[test]
    fn parallel_edges_use_minimum() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Micros::from_ms(9.0));
        g.add_edge(NodeId(0), NodeId(1), Micros::from_ms(2.0));
        assert_eq!(g.distance(NodeId(0), NodeId(1)), Micros::from_ms(2.0));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn reached_nodes_excludes_source() {
        let g = star();
        let sp = g.dijkstra(NodeId(0), Micros::INFINITY);
        let reached: Vec<NodeId> = sp.reached_nodes().map(|(n, _)| n).collect();
        assert_eq!(reached.len(), 4);
        assert!(!reached.contains(&NodeId(0)));
    }

    #[test]
    fn local_dijkstra_matches_dense_within_radius() {
        let g = star();
        let radius = Micros::from_ms(10.0);
        let dense = g.dijkstra(NodeId(1), radius);
        let mut local = g.dijkstra_local(NodeId(1), radius);
        local.sort_by_key(|&(n, _, _)| n);
        let dense_set: Vec<(NodeId, Micros, u32)> = dense
            .reached_nodes()
            .map(|(n, d)| (n, d, dense.hops_to(n).expect("reached") as u32))
            .collect();
        assert_eq!(local, dense_set);
    }

    #[test]
    fn local_dijkstra_respects_radius_and_hops() {
        let g = star();
        let res = g.dijkstra_local(NodeId(3), Micros::from_ms(6.0));
        // Only the hub (5 ms, 1 hop) is inside 6 ms from spoke 3.
        assert_eq!(res, vec![(NodeId(0), Micros::from_ms(5.0), 1)]);
    }

    proptest::proptest! {
        /// Sparse and dense Dijkstra agree on any graph and radius.
        #[test]
        fn prop_local_matches_dense(
            edges in proptest::collection::vec((0u32..10, 0u32..10, 1u64..3_000), 1..30),
            radius in 1u64..6_000,
        ) {
            let mut g = Graph::with_nodes(10);
            for &(a, b, w) in &edges {
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b), Micros(w));
                }
            }
            let r = Micros(radius);
            let dense = g.dijkstra(NodeId(0), r);
            let mut local: Vec<(NodeId, Micros)> = g
                .dijkstra_local(NodeId(0), r)
                .into_iter()
                .map(|(n, d, _)| (n, d))
                .collect();
            local.sort_by_key(|&(n, _)| n);
            let mut dense_v: Vec<(NodeId, Micros)> = dense.reached_nodes().collect();
            dense_v.sort_by_key(|&(n, _)| n);
            proptest::prop_assert_eq!(local, dense_v);
        }

        /// Dijkstra distances satisfy the triangle inequality over the
        /// graph metric and are symmetric for undirected graphs.
        #[test]
        fn prop_dijkstra_metric(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 1u64..5_000), 1..40),
        ) {
            let mut g = Graph::with_nodes(12);
            for &(a, b, w) in &edges {
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b), Micros(w));
                }
            }
            let sp0 = g.dijkstra(NodeId(0), Micros::INFINITY);
            let sp1 = g.dijkstra(NodeId(1), Micros::INFINITY);
            // Symmetry.
            proptest::prop_assert_eq!(sp0.dist(NodeId(1)), sp1.dist(NodeId(0)));
            // Triangle inequality via node 2 when all legs are finite.
            let d01 = sp0.dist(NodeId(1));
            let d02 = sp0.dist(NodeId(2));
            let d12 = sp1.dist(NodeId(2));
            if !d02.is_infinite() && !d12.is_infinite() {
                proptest::prop_assert!(d01 <= d02 + d12);
            }
        }
    }
}
