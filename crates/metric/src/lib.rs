//! # np-metric
//!
//! Latency spaces and the search API for the `nearest-peer` reproduction
//! (Vishnumurthy & Francis, IMC 2008).
//!
//! The paper's entire argument is about the *shape* of the inter-peer
//! latency space: under the clustering condition the space violates the
//! growth-constrained assumption, the doubling assumption and low
//! dimensionality (§2.2), and every latency-only nearest-peer algorithm
//! degrades to brute force. This crate provides:
//!
//! * [`matrix::LatencyMatrix`] — the dense symmetric RTT matrix every
//!   simulation consumes, with ground-truth nearest/k-NN queries,
//! * [`graph`] — weighted router-level graphs with Dijkstra (bounded and
//!   full), used by the traceroute-derived adjacency study of paper §5
//!   (Figures 10–11),
//! * [`diagnostics`] — quantitative versions of §2.2: growth constant,
//!   doubling constant via greedy ball cover, and the Levina–Bickel
//!   intrinsic-dimension estimator,
//! * [`nearest`] — the [`nearest::NearestPeerAlgo`] trait implemented by
//!   Meridian, the coordinate schemes and every baseline, plus the
//!   [`nearest::QueryOutcome`] accounting (probe and hop counts) that the
//!   paper's cost arguments are about,
//! * [`cache`] — precomputed ground-truth nearest-member answers
//!   ([`cache::NearestCache`]), built in parallel once per scenario so
//!   the batch query runner checks outcomes in O(1),
//! * [`drift`] — [`drift::DriftedWorld`], additive per-peer RTT drift
//!   over any backend (the churn scenarios' time-varying latencies),
//! * [`world`] — the [`world::WorldStore`] backend trait every consumer
//!   (targets, caches, overlays, the runner) is written against,
//! * [`sharded`] — [`sharded::ShardedWorld`], the block-compressed
//!   backend (dense per-cluster blocks + hub summary) that takes worlds
//!   past the dense matrix's ~2.5 k-peer memory wall,
//! * [`hierarchical`] — [`hierarchical::HierarchicalWorld`], the
//!   two-level backend (shards of shards, super-hub summary, lazily
//!   materialised blocks under a byte budget) that takes worlds to
//!   10⁶ peers with bounded RSS,
//! * [`scan`] — the shared SIMD-friendly nearest-scan kernel both
//!   backends' ground-truth queries run on.

pub mod cache;
pub mod diagnostics;
pub mod drift;
pub mod graph;
pub mod hierarchical;
pub mod matrix;
pub mod nearest;
pub mod scan;
pub mod sharded;
pub mod world;

pub use cache::NearestCache;
pub use drift::DriftedWorld;
pub use hierarchical::{CacheStats, HierarchicalWorld};
pub use matrix::{LatencyMatrix, PeerId};
pub use nearest::{FaultPlan, NearestPeerAlgo, ProbeCounter, QueryOutcome, Target};
pub use sharded::ShardedWorld;
pub use world::{ShardView, WorldStore};
