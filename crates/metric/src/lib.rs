//! # np-metric
//!
//! Latency spaces and the search API for the `nearest-peer` reproduction
//! (Vishnumurthy & Francis, IMC 2008).
//!
//! The paper's entire argument is about the *shape* of the inter-peer
//! latency space: under the clustering condition the space violates the
//! growth-constrained assumption, the doubling assumption and low
//! dimensionality (§2.2), and every latency-only nearest-peer algorithm
//! degrades to brute force. This crate provides:
//!
//! * [`matrix::LatencyMatrix`] — the dense symmetric RTT matrix every
//!   simulation consumes, with ground-truth nearest/k-NN queries,
//! * [`graph`] — weighted router-level graphs with Dijkstra (bounded and
//!   full), used by the traceroute-derived adjacency study of paper §5
//!   (Figures 10–11),
//! * [`diagnostics`] — quantitative versions of §2.2: growth constant,
//!   doubling constant via greedy ball cover, and the Levina–Bickel
//!   intrinsic-dimension estimator,
//! * [`nearest`] — the [`nearest::NearestPeerAlgo`] trait implemented by
//!   Meridian, the coordinate schemes and every baseline, plus the
//!   [`nearest::QueryOutcome`] accounting (probe and hop counts) that the
//!   paper's cost arguments are about,
//! * [`cache`] — precomputed ground-truth nearest-member answers
//!   ([`cache::NearestCache`]), built in parallel once per scenario so
//!   the batch query runner checks outcomes in O(1).

pub mod cache;
pub mod diagnostics;
pub mod graph;
pub mod matrix;
pub mod nearest;

pub use cache::NearestCache;
pub use matrix::{LatencyMatrix, PeerId};
pub use nearest::{NearestPeerAlgo, ProbeCounter, QueryOutcome, Target};
