//! Dense symmetric latency matrices.
//!
//! The Meridian simulations of paper §4 run over an "inter-peer latency
//! matrix with about 2500 peers"; this is that object. Storage is a full
//! `n×n` array of `f32` milliseconds-as-µs (u32 would also fit, but f32
//! keeps interop with the diagnostics cheap) — at the paper's scale
//! (2.5 k peers) that is 25 MB, well within laptop budgets, and O(1)
//! access is what the query simulators need.

use crate::scan;
use crate::world::WorldStore;
use np_util::parallel::par_for_rows;
use np_util::Micros;

/// Index of a peer in a latency matrix / world.
///
/// A plain newtype over `u32`: worlds at paper scale have at most a few
/// hundred thousand peers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The matrix row index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

/// A dense symmetric matrix of round-trip latencies with zero diagonal.
#[derive(Clone)]
pub struct LatencyMatrix {
    n: usize,
    /// Row-major full storage, µs as f32. Symmetry is maintained by the
    /// constructors; `debug_validate` checks it.
    data: Vec<f32>,
}

impl LatencyMatrix {
    /// Build from a pairwise latency function (called once per unordered
    /// pair `i < j`).
    pub fn build(n: usize, mut rtt: impl FnMut(PeerId, PeerId) -> Micros) -> LatencyMatrix {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rtt(PeerId(i as u32), PeerId(j as u32)).as_us() as f32;
                data[i * n + j] = v;
                data[j * n + i] = v;
            }
        }
        LatencyMatrix { n, data }
    }

    /// Parallel [`LatencyMatrix::build`]: row-blocked construction on
    /// `threads` workers.
    ///
    /// Produces a matrix **bit-identical** to `build` with the same
    /// `rtt` function: each worker claims whole rows and computes only
    /// the strictly-upper entries of its rows (so no unordered pair is
    /// ever computed twice, exactly like the serial constructor); the
    /// lower triangle is then mirrored in one cache-friendly pass.
    ///
    /// Unlike `build`, the latency function must be pure (`Fn`, not
    /// `FnMut`) and `Sync`: a stateful closure (say, one drawing from a
    /// shared RNG) would make row values depend on scheduling order.
    /// World generators satisfy this by materialising randomness up
    /// front and closing over the finished world — see
    /// `ClusterWorld::to_matrix`.
    pub fn build_par(
        n: usize,
        threads: usize,
        rtt: impl Fn(PeerId, PeerId) -> Micros + Sync,
    ) -> LatencyMatrix {
        let mut data = vec![0.0f32; n * n];
        par_for_rows(threads, &mut data, n.max(1), |i, row| {
            for (j, cell) in row.iter_mut().enumerate().skip(i + 1) {
                *cell = rtt(PeerId(i as u32), PeerId(j as u32)).as_us() as f32;
            }
        });
        // Mirror the upper triangle; memory-bound, so serial is fine.
        for i in 0..n {
            for j in (i + 1)..n {
                data[j * n + i] = data[i * n + j];
            }
        }
        LatencyMatrix { n, data }
    }

    /// Number of peers.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RTT between two peers (zero on the diagonal).
    #[inline]
    pub fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
        Micros(self.data[a.idx() * self.n + b.idx()] as u64)
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.n as u32).map(PeerId)
    }

    /// The nearest peer to `target` **within `members`**, excluding
    /// `target` itself. Ties broken by lowest id (deterministic). `None`
    /// if `members` contains no other peer.
    ///
    /// This is the ground truth the paper's "P(found peer is correct
    /// closest peer)" compares against: the target node is outside the
    /// overlay and `members` is the overlay.
    ///
    /// Implementation: gather the members' cells straight out of the
    /// target's row and run the shared auto-vectorized
    /// [`scan::nearest_in`] kernel (cells are whole microseconds, so
    /// f32 comparison coincides with the `Micros` ordering).
    pub fn nearest_within(&self, target: PeerId, members: &[PeerId]) -> Option<PeerId> {
        let row = &self.data[target.idx() * self.n..][..self.n];
        let dists: Vec<f32> = members
            .iter()
            .map(|&m| if m == target { f32::INFINITY } else { row[m.idx()] })
            .collect();
        scan::nearest_in(&dists, members)
    }

    /// The `k` nearest peers to `target` within `members` (ascending RTT,
    /// ties by id), excluding `target`.
    pub fn knn_within(&self, target: PeerId, members: &[PeerId], k: usize) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = members.iter().copied().filter(|&m| m != target).collect();
        v.sort_by_key(|&m| (self.rtt(target, m), m));
        v.truncate(k);
        v
    }

    /// Number of peers in `members` strictly closer to `target` than `d`.
    pub fn count_within(&self, target: PeerId, members: &[PeerId], d: Micros) -> usize {
        members
            .iter()
            .filter(|&&m| m != target && self.rtt(target, m) < d)
            .count()
    }

    /// Median RTT over all unordered pairs (reservoir-free exact
    /// computation; O(n²) values). Used to calibrate the synthetic hub
    /// matrix against the Meridian dataset's ≈65 ms median.
    pub fn median_pair_rtt(&self) -> Option<Micros> {
        if self.n < 2 {
            return None;
        }
        let mut v: Vec<u64> = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                v.push(self.data[i * self.n + j] as u64);
            }
        }
        v.sort_unstable();
        Some(Micros(v[v.len() / 2]))
    }

    /// Check symmetry and zero diagonal; used by tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..self.n {
            if self.data[i * self.n + i] != 0.0 {
                return Err(format!("non-zero diagonal at {i}"));
            }
            for j in (i + 1)..self.n {
                let a = self.data[i * self.n + j];
                let b = self.data[j * self.n + i];
                if a != b {
                    return Err(format!("asymmetry at ({i},{j}): {a} vs {b}"));
                }
                if a < 0.0 || !a.is_finite() {
                    return Err(format!("invalid latency at ({i},{j}): {a}"));
                }
            }
        }
        Ok(())
    }

    /// Maximum over all pairs (diameter of the space).
    pub fn diameter(&self) -> Micros {
        let mut max = 0.0f32;
        for &v in &self.data {
            if v > max {
                max = v;
            }
        }
        Micros(max as u64)
    }
}

impl WorldStore for LatencyMatrix {
    fn len(&self) -> usize {
        self.n
    }

    fn diameter(&self) -> Micros {
        // The inherent flat-array scan, not the trait's O(n²) default.
        LatencyMatrix::diameter(self)
    }

    #[inline]
    fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
        LatencyMatrix::rtt(self, a, b)
    }

    fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    // The derived queries delegate to the inherent row-based
    // implementations (the gather skips the f32→u64→f32 round-trip the
    // trait default pays; for whole-µs cells the results are identical).
    fn nearest_within(&self, target: PeerId, members: &[PeerId]) -> Option<PeerId> {
        LatencyMatrix::nearest_within(self, target, members)
    }

    fn knn_within(&self, target: PeerId, members: &[PeerId], k: usize) -> Vec<PeerId> {
        LatencyMatrix::knn_within(self, target, members, k)
    }

    fn count_within(&self, target: PeerId, members: &[PeerId], d: Micros) -> usize {
        LatencyMatrix::count_within(self, target, members, d)
    }
}

impl std::fmt::Debug for LatencyMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyMatrix({} peers)", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(n: usize) -> LatencyMatrix {
        // Peers on a line, 1 ms apart: rtt(i,j) = |i-j| ms.
        LatencyMatrix::build(n, |a, b| {
            Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
        })
    }

    #[test]
    fn build_is_symmetric_with_zero_diagonal() {
        let m = line_matrix(8);
        m.validate().expect("valid");
        assert_eq!(m.rtt(PeerId(2), PeerId(5)), Micros::from_ms_u64(3));
        assert_eq!(m.rtt(PeerId(5), PeerId(2)), Micros::from_ms_u64(3));
        assert_eq!(m.rtt(PeerId(4), PeerId(4)), Micros::ZERO);
    }

    #[test]
    fn nearest_within_excludes_target_and_breaks_ties_by_id() {
        let m = line_matrix(10);
        let members: Vec<PeerId> = (0..10).map(PeerId).collect();
        // Peer 5's neighbours 4 and 6 are equidistant; lowest id wins.
        assert_eq!(m.nearest_within(PeerId(5), &members), Some(PeerId(4)));
        // Target not in members still works.
        let sub = [PeerId(0), PeerId(9)];
        assert_eq!(m.nearest_within(PeerId(2), &sub), Some(PeerId(0)));
        // No other member -> None.
        assert_eq!(m.nearest_within(PeerId(3), &[PeerId(3)]), None);
    }

    #[test]
    fn knn_is_sorted_ascending() {
        let m = line_matrix(10);
        let members: Vec<PeerId> = (0..10).map(PeerId).collect();
        let knn = m.knn_within(PeerId(0), &members, 3);
        assert_eq!(knn, vec![PeerId(1), PeerId(2), PeerId(3)]);
    }

    #[test]
    fn count_within_is_strict() {
        let m = line_matrix(10);
        let members: Vec<PeerId> = (0..10).map(PeerId).collect();
        assert_eq!(
            m.count_within(PeerId(0), &members, Micros::from_ms_u64(3)),
            2 // peers 1 and 2; peer 3 at exactly 3 ms is excluded
        );
    }

    #[test]
    fn build_par_matches_build_exactly() {
        // Non-trivial latency structure (not just |i-j|) so a row/column
        // mix-up or double-computed pair would show.
        let rtt = |a: PeerId, b: PeerId| {
            Micros((a.0 as u64 * 7919 + b.0 as u64 * 104_729) % 50_000 + (a.0 ^ b.0) as u64)
        };
        // Symmetrise: the constructors call rtt once per unordered pair
        // with a < b, so wrap to make the function order-insensitive.
        let sym = |a: PeerId, b: PeerId| {
            let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
            rtt(lo, hi)
        };
        for n in [0, 1, 2, 17, 64] {
            let serial = LatencyMatrix::build(n, sym);
            for threads in [1, 3, 8] {
                let par = LatencyMatrix::build_par(n, threads, sym);
                assert_eq!(par.n, serial.n);
                assert_eq!(par.data, serial.data, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn build_par_is_valid_symmetric() {
        let m = LatencyMatrix::build_par(23, 4, |a, b| {
            Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
        });
        m.validate().expect("valid");
    }

    #[test]
    fn median_and_diameter() {
        let m = line_matrix(3); // pairs: 1, 1, 2 ms -> median 1 ms
        assert_eq!(m.median_pair_rtt(), Some(Micros::from_ms_u64(1)));
        assert_eq!(m.diameter(), Micros::from_ms_u64(2));
        assert_eq!(line_matrix(1).median_pair_rtt(), None);
    }

    proptest::proptest! {
        /// nearest_within always returns the true minimum.
        #[test]
        fn prop_nearest_is_minimum(
            lat in proptest::collection::vec(0u64..10_000, 36),
        ) {
            // Build a random 9-peer symmetric matrix from the upper triangle.
            let n = 9usize;
            let mut it = lat.into_iter();
            let mut tri = vec![vec![0u64; n]; n];
            for i in 0..n {
                for j in (i+1)..n {
                    let v = it.next().expect("enough entries");
                    tri[i][j] = v;
                    tri[j][i] = v;
                }
            }
            let m = LatencyMatrix::build(n, |a, b| Micros(tri[a.idx()][b.idx()]));
            m.validate().expect("valid");
            let members: Vec<PeerId> = (0..n as u32).map(PeerId).collect();
            for t in 0..n as u32 {
                let t = PeerId(t);
                let found = m.nearest_within(t, &members).expect("others exist");
                let best = members.iter().copied().filter(|&p| p != t)
                    .map(|p| m.rtt(t, p)).min().expect("non-empty");
                proptest::prop_assert_eq!(m.rtt(t, found), best);
            }
        }
    }
}
