//! Quantitative diagnostics for §2.2's metric-space assumptions.
//!
//! The paper argues that the clustering condition breaks three standard
//! assumptions — growth constraint (Karger–Ruhl, Tapestry), the doubling
//! property (Meridian) and low dimensionality (PIC, Mithos, Vivaldi). This
//! module measures all three on a concrete [`LatencyMatrix`], so the
//! argument can be checked numerically (extension experiment **Ext B** in
//! DESIGN.md):
//!
//! * [`growth_constant`] — `max |B(p, 2l)| / |B(p, l)|` over sampled peers
//!   and radii. A clustered world shows a spike when `l` sits inside the
//!   empty annulus between the end-network (µs) and the rest of the
//!   cluster (ms).
//! * [`doubling_constant`] — the number of radius-`r/2` balls a greedy
//!   cover needs for a radius-`r` ball. Under clustering this approaches
//!   the number of end-networks in a cluster (the paper's exact argument).
//! * [`intrinsic_dimension`] — the Levina–Bickel maximum-likelihood
//!   estimator; clusters inflate it because distinguishing n equidistant
//!   end-networks needs ~n dimensions.

use crate::matrix::PeerId;
use crate::world::WorldStore;
use np_util::Micros;
use rand::seq::SliceRandom;
use rand::Rng;

/// One `(peer, radius)` growth observation.
#[derive(Debug, Clone, Copy)]
pub struct GrowthSample {
    pub peer: PeerId,
    pub radius: Micros,
    pub inner: usize,
    pub outer: usize,
}

impl GrowthSample {
    /// `|B(p,2l)| / |B(p,l)|`.
    pub fn ratio(&self) -> f64 {
        self.outer as f64 / self.inner as f64
    }
}

/// Measure growth ratios over `n_peers` sampled peers and `n_radii`
/// log-spaced radii. Only observations with a meaningful inner ball
/// (`inner >= min_inner`) are kept — ratios over singleton balls say
/// nothing about the space.
pub fn growth_samples<R: Rng + ?Sized>(
    matrix: &dyn WorldStore,
    members: &[PeerId],
    n_peers: usize,
    n_radii: usize,
    min_inner: usize,
    rng: &mut R,
) -> Vec<GrowthSample> {
    assert!(min_inner >= 1);
    let diameter = matrix.diameter();
    if diameter == Micros::ZERO || members.len() < 2 {
        return Vec::new();
    }
    let lo = 50.0f64; // 50 µs: below any realistic latency
    let hi = diameter.as_us() as f64 / 2.0;
    let mut peers: Vec<PeerId> = members.to_vec();
    peers.shuffle(rng);
    peers.truncate(n_peers);
    let mut out = Vec::new();
    for &p in &peers {
        for k in 0..n_radii {
            let f = if n_radii == 1 {
                0.5
            } else {
                k as f64 / (n_radii - 1) as f64
            };
            let radius = Micros((lo * (hi / lo).powf(f)).round() as u64);
            // Balls are closed (<= r): the clustering argument uses
            // "within latency l".
            let inner = members
                .iter()
                .filter(|&&m| m != p && matrix.rtt(p, m) <= radius)
                .count();
            if inner < min_inner {
                continue;
            }
            let outer = members
                .iter()
                .filter(|&&m| m != p && matrix.rtt(p, m) <= radius * 2)
                .count();
            out.push(GrowthSample {
                peer: p,
                radius,
                inner,
                outer,
            });
        }
    }
    out
}

/// The growth constant: the maximum `|B(p,2l)|/|B(p,l)|` over the sampled
/// observations. `None` when no observation had a populated inner ball.
pub fn growth_constant(samples: &[GrowthSample]) -> Option<f64> {
    samples
        .iter()
        .map(|s| s.ratio())
        .max_by(|a, b| a.partial_cmp(b).expect("finite ratios"))
}

/// Greedily cover the closed ball `B(center, r)` (over `members`) with
/// balls of radius `r/2` centred at member points; returns the number of
/// balls used.
///
/// Greedy cover is a ln(n)-approximation of the optimal cover — good
/// enough to *witness* the blow-up the paper describes (the true doubling
/// constant is only smaller by a log factor).
pub fn cover_count(matrix: &dyn WorldStore, members: &[PeerId], center: PeerId, r: Micros) -> usize {
    let mut uncovered: Vec<PeerId> = members
        .iter()
        .copied()
        .filter(|&m| matrix.rtt(center, m) <= r)
        .collect();
    let half = Micros(r.as_us() / 2);
    let mut balls = 0;
    while let Some(&c) = uncovered.first() {
        balls += 1;
        uncovered.retain(|&m| matrix.rtt(c, m) > half);
    }
    balls
}

/// The doubling constant estimate: the max greedy [`cover_count`] over
/// `n_centers` sampled centres and `n_radii` log-spaced radii.
pub fn doubling_constant<R: Rng + ?Sized>(
    matrix: &dyn WorldStore,
    members: &[PeerId],
    n_centers: usize,
    n_radii: usize,
    rng: &mut R,
) -> usize {
    let diameter = matrix.diameter();
    if diameter == Micros::ZERO || members.is_empty() {
        return 0;
    }
    let mut centers: Vec<PeerId> = members.to_vec();
    centers.shuffle(rng);
    centers.truncate(n_centers);
    let lo = 100.0f64;
    let hi = diameter.as_us() as f64;
    let mut worst = 0;
    for &c in &centers {
        for k in 0..n_radii {
            let f = if n_radii == 1 {
                0.5
            } else {
                k as f64 / (n_radii - 1) as f64
            };
            let r = Micros((lo * (hi / lo).powf(f)).round() as u64);
            worst = worst.max(cover_count(matrix, members, c, r));
        }
    }
    worst
}

/// Levina–Bickel maximum-likelihood intrinsic dimension with `k`
/// neighbours, averaged over `n_samples` sampled peers.
///
/// `m_k(x) = [ (k-1)⁻¹ Σ_{j<k} ln( T_k(x) / T_j(x) ) ]⁻¹` where `T_j` is
/// the distance to the j-th nearest neighbour. Distances of zero (peers in
/// the same end-network at identical latency) are clamped to 1 µs — the
/// estimator needs strictly positive ratios; the clamp only *underestimates*
/// dimension, making the reported blow-up conservative.
pub fn intrinsic_dimension<R: Rng + ?Sized>(
    matrix: &dyn WorldStore,
    members: &[PeerId],
    k: usize,
    n_samples: usize,
    rng: &mut R,
) -> Option<f64> {
    if members.len() <= k || k < 2 {
        return None;
    }
    let mut sample: Vec<PeerId> = members.to_vec();
    sample.shuffle(rng);
    sample.truncate(n_samples);
    let mut dims = Vec::new();
    for &p in &sample {
        let knn = matrix.knn_within(p, members, k);
        let t_k = (matrix.rtt(p, *knn.last().expect("k >= 2")).as_us()).max(1) as f64;
        let mut acc = 0.0;
        for &q in &knn[..k - 1] {
            let t_j = (matrix.rtt(p, q).as_us()).max(1) as f64;
            acc += (t_k / t_j).ln();
        }
        if acc > 0.0 {
            dims.push((k - 1) as f64 / acc);
        }
    }
    if dims.is_empty() {
        None
    } else {
        Some(dims.iter().sum::<f64>() / dims.len() as f64)
    }
}

/// A bundled report for a world, as printed by `ext_assumptions`.
#[derive(Debug, Clone)]
pub struct AssumptionReport {
    pub growth_max: Option<f64>,
    pub growth_p95: Option<f64>,
    pub doubling: usize,
    pub intrinsic_dim: Option<f64>,
}

/// Run all three diagnostics with moderate sampling budgets.
pub fn assumption_report<R: Rng + ?Sized>(
    matrix: &dyn WorldStore,
    members: &[PeerId],
    rng: &mut R,
) -> AssumptionReport {
    // min_inner = 1: the clustering spike is precisely "inner ball holds
    // only the end-network partner, the 2x ball holds the whole cluster".
    let samples = growth_samples(matrix, members, 64, 24, 1, rng);
    let ratios: Vec<f64> = samples.iter().map(|s| s.ratio()).collect();
    AssumptionReport {
        growth_max: growth_constant(&samples),
        growth_p95: np_util::stats::percentile(&ratios, 95.0),
        doubling: doubling_constant(matrix, members, 16, 12, rng),
        intrinsic_dim: intrinsic_dimension(matrix, members, 10, 128, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::LatencyMatrix;
    use np_util::rng::rng_from;

    /// A uniform line: growth-friendly space.
    fn line(n: usize) -> (LatencyMatrix, Vec<PeerId>) {
        let m = LatencyMatrix::build(n, |a, b| {
            Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
        });
        let members = (0..n as u32).map(PeerId).collect();
        (m, members)
    }

    /// A "clustered" space: `g` groups of `s` peers; 100 µs inside a
    /// group, ~10–11 ms across groups (the PoP star of Figure 1, with the
    /// small latency variation real clusters have — exact ties would make
    /// the MLE dimension estimator degenerate, which realistic worlds
    /// never exhibit).
    fn clustered(g: usize, s: usize) -> (LatencyMatrix, Vec<PeerId>) {
        let n = g * s;
        let m = LatencyMatrix::build(n, |a, b| {
            if a.idx() / s == b.idx() / s {
                Micros::from_us(100)
            } else {
                // Symmetric deterministic jitter in [0, 1.1 ms).
                let j = ((a.0 ^ b.0).wrapping_mul(2654435761) % 1100) as u64;
                Micros::from_ms_u64(10) + Micros::from_us(j)
            }
        });
        let members = (0..n as u32).map(PeerId).collect();
        (m, members)
    }

    #[test]
    fn growth_is_tame_on_a_line() {
        let (m, members) = line(64);
        let mut rng = rng_from(1);
        let samples = growth_samples(&m, &members, 32, 16, 2, &mut rng);
        let g = growth_constant(&samples).expect("populated");
        // Doubling a radius on a line at most ~doubles+1 the count near
        // edges; allow slack for boundary effects.
        assert!(g <= 4.0, "line growth constant {g}");
    }

    #[test]
    fn growth_spikes_under_clustering() {
        let (m, members) = clustered(40, 2);
        let mut rng = rng_from(2);
        let samples = growth_samples(&m, &members, 40, 24, 1, &mut rng);
        let g = growth_constant(&samples).expect("populated");
        // Inner ball at ~5 ms holds only the end-network partner (1 peer);
        // the 2x ball at ~10 ms holds everyone (79 peers).
        assert!(g >= 20.0, "clustered growth constant {g}");
    }

    #[test]
    fn doubling_counts_end_networks() {
        let (m, members) = clustered(30, 2);
        let mut rng = rng_from(3);
        let d = doubling_constant(&m, &members, 10, 10, &mut rng);
        // A 10 ms ball covers the whole cluster; 5 ms balls cover one
        // group each -> ~30 balls needed (the paper's §2.2 argument).
        assert!(d >= 25, "doubling estimate {d}");
        let (ml, mem_l) = line(60);
        let dl = doubling_constant(&ml, &mem_l, 10, 10, &mut rng);
        assert!(dl <= 6, "line doubling estimate {dl}");
    }

    #[test]
    fn dimension_higher_under_clustering() {
        let (ml, mem_l) = line(128);
        let (mc, mem_c) = clustered(64, 2);
        let mut rng = rng_from(4);
        // k = 20 looks past the single end-network partner into the
        // equidistant cluster shell, where the dimensionality blow-up lives.
        let dim_line = intrinsic_dimension(&ml, &mem_l, 20, 64, &mut rng).expect("est");
        let dim_clu = intrinsic_dimension(&mc, &mem_c, 20, 64, &mut rng).expect("est");
        assert!(
            dim_clu > 2.0 * dim_line,
            "clustered dim {dim_clu} vs line dim {dim_line}"
        );
    }

    #[test]
    fn cover_count_of_tight_ball_is_one() {
        let (m, members) = clustered(5, 4);
        // Radius 200 µs around a peer covers only its own group, and one
        // half-radius ball suffices.
        assert_eq!(
            cover_count(&m, &members, PeerId(0), Micros::from_us(200)),
            1
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (m, members) = line(1);
        let mut rng = rng_from(5);
        assert!(growth_samples(&m, &members, 8, 8, 1, &mut rng).is_empty());
        assert_eq!(growth_constant(&[]), None);
        assert_eq!(intrinsic_dimension(&m, &members, 10, 8, &mut rng), None);
    }

    #[test]
    fn report_runs_end_to_end() {
        let (m, members) = clustered(20, 2);
        let mut rng = rng_from(6);
        let r = assumption_report(&m, &members, &mut rng);
        assert!(r.doubling >= 15);
        assert!(r.growth_max.expect("populated") > 10.0);
        assert!(r.intrinsic_dim.is_some());
    }
}
