//! Two-level block-streamed latency worlds: shards of shards with a
//! hierarchical hub summary and lazily materialised per-shard blocks.
//!
//! [`crate::ShardedWorld`] breaks the dense matrix's n² wall, but two of
//! its own costs go quadratic on the way to 10⁶ peers: the `S×S` hub
//! summary (S ≈ 20 k shards at 1 M peers → 1.6 GB of f32) and the
//! resident per-shard dense blocks (Σ mₛ² floats live for the whole
//! run). [`HierarchicalWorld`] removes both:
//!
//! * **Two-level hub summary.** Shards are grouped into `G`
//!   **super-shards**. Each group keeps a dense intra-group hub matrix
//!   (`Σ gᵢ²` entries instead of `S²`), and each group elects a
//!   **super-hub shard** — the hub-level medoid (the shard minimising
//!   total intra-group hub distance, ties by lowest shard id). A
//!   cross-group path is reassembled as
//!
//!   ```text
//!   rtt(a, b) = offset[a]                       // peer  → shard hub
//!             + super_offset[shard(a)]          // hub   → super-hub
//!             + super_rtt[group(a)][group(b)]   // super → super
//!             + super_offset[shard(b)]          // super-hub → hub
//!             + offset[b]                       // shard hub → peer
//!   ```
//!
//!   summed in `u64` microseconds from the stored whole-µs `f32`
//!   components — the same no-re-rounding discipline as the one-level
//!   backend. With `G = √S` the summary is `O(S^1.5)` entries instead
//!   of `S²`.
//!
//! * **Lazily materialised, budget-bounded blocks.** Intra-shard RTTs
//!   still read a dense per-shard block, but blocks are built on first
//!   touch from the retained generator closure and cached under a byte
//!   budget with least-recently-stamped eviction — peak RSS is
//!   `summaries + O(n) + min(budget, Σ mₛ²·4)` instead of `Σ mₛ²·4`.
//!   A block is a **pure function** of the world (serial
//!   upper-triangle fill, mirrored), so evicting and rebuilding one
//!   returns bit-identical bytes: cache pressure, thread scheduling
//!   and cold-vs-warm caches can change *when* a block exists, never
//!   *what it contains*.
//!
//! # Exact vs approximate
//!
//! * **1 super-shard** collapses to [`crate::ShardedWorld`]: one
//!   intra-group hub matrix holding exactly the `S×S` summary, every
//!   path the same `u64` sum — bit-identical, property-tested in
//!   `tests/world_equivalence.rs`.
//! * **Intra-shard and intra-group queries** are as exact as the
//!   one-level backend's (exact blocks; the group's own hub matrix).
//! * **Cross-group queries** detour through the two super-hub shards:
//!   in a metric hub space the estimate overestimates by at most
//!   `2·(H(s(a), σ(a)) + H(s(b), σ(b)))` — the PR 4 spill/medoid
//!   detour-bound analysis, one level up (`H` = hub distance, `σ` =
//!   the endpoint's super-hub shard). On §4 generated worlds the
//!   level-1 summary is the generator's own rule, so this is the
//!   *only* approximation the second level adds.

use crate::matrix::{LatencyMatrix, PeerId};
use crate::world::{ShardView, WorldStore};
use np_util::Micros;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Telemetry counters for the block cache. Scheduling-dependent (two
/// racing threads may both materialise a block), so these are for
/// capacity planning and the microbenches — never for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub resident_blocks: usize,
    pub resident_bytes: usize,
}

/// The budget-bounded lazy block store. Slots are per-shard
/// `RwLock<Option<Arc<block>>>`; recency stamps are racy atomics
/// (eviction *policy* may depend on timing — block *contents* never
/// do), and resident-byte accounting plus eviction run under one
/// mutex. Lock order is always mutex → slot, so readers (who drop the
/// slot guard before ever touching the mutex) cannot deadlock against
/// an evictor.
struct BlockCache {
    slots: Vec<RwLock<Option<Arc<Vec<f32>>>>>,
    /// Per-slot last-touch stamp (monotone clock ticks).
    stamps: Vec<AtomicU64>,
    clock: AtomicU64,
    /// Bytes of each shard's block when resident (`mₛ²·4`).
    block_bytes: Vec<usize>,
    budget_bytes: usize,
    resident: Mutex<(usize, usize)>, // (bytes, blocks)
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    fn new(block_bytes: Vec<usize>, budget_bytes: usize) -> BlockCache {
        let s = block_bytes.len();
        BlockCache {
            slots: (0..s).map(|_| RwLock::new(None)).collect(),
            stamps: (0..s).map(|_| AtomicU64::new(0)).collect(),
            clock: AtomicU64::new(0),
            block_bytes,
            budget_bytes,
            resident: Mutex::new((0, 0)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn touch(&self, s: usize) {
        let t = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.stamps[s].store(t, Ordering::Relaxed);
    }

    /// The resident block, if any (drops the slot guard before
    /// returning — see the lock-order note on the struct).
    fn get(&self, s: usize) -> Option<Arc<Vec<f32>>> {
        let found = self.slots[s].read().expect("cache slot poisoned").clone();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(s);
        }
        found
    }

    /// Admit a freshly materialised block (always — a block larger than
    /// the whole budget still serves, alone) and evict
    /// least-recently-stamped residents until back under budget. If a
    /// racing thread admitted the same shard first, its copy wins (the
    /// bytes are identical by construction).
    fn insert(&self, s: usize, data: Arc<Vec<f32>>) -> Arc<Vec<f32>> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut resident = self.resident.lock().expect("cache accounting poisoned");
        {
            let mut slot = self.slots[s].write().expect("cache slot poisoned");
            if let Some(existing) = slot.as_ref() {
                return existing.clone();
            }
            *slot = Some(data.clone());
        }
        resident.0 += self.block_bytes[s];
        resident.1 += 1;
        self.touch(s);
        while resident.0 > self.budget_bytes && resident.1 > 1 {
            let victim = (0..self.slots.len())
                .filter(|&v| v != s)
                .filter(|&v| self.slots[v].read().expect("cache slot poisoned").is_some())
                .min_by_key(|&v| self.stamps[v].load(Ordering::Relaxed));
            let Some(v) = victim else { break };
            *self.slots[v].write().expect("cache slot poisoned") = None;
            resident.0 -= self.block_bytes[v];
            resident.1 -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        data
    }

    fn stats(&self) -> CacheStats {
        let resident = self.resident.lock().expect("cache accounting poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: resident.0,
            resident_blocks: resident.1,
        }
    }
}

/// A two-level block-streamed latency world. See the module docs for
/// the model and the exactness ledger.
pub struct HierarchicalWorld {
    n: usize,
    /// Shard → members, ascending id.
    members: Vec<Vec<PeerId>>,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    /// Peer → shard-hub latency, µs-as-f32 (level 1, same as the
    /// one-level backend).
    offset: Vec<f32>,
    /// Shard → super-shard (group) index.
    super_of: Vec<u32>,
    /// Shard → row index within its group's hub matrix.
    local_shard: Vec<u32>,
    /// Group → dense `gᵢ×gᵢ` intra-group hub matrix, µs-as-f32.
    intra_hub: Vec<Vec<f32>>,
    /// Shard → hub distance to its group's super-hub shard, µs-as-f32
    /// (zero for the super-hub itself).
    super_offset: Vec<f32>,
    /// Group → its super-hub shard id.
    super_hub_shard: Vec<u32>,
    /// `G×G` super-hub-to-super-hub matrix, µs-as-f32.
    super_rtt: Vec<f32>,
    /// The retained pairwise generator — blocks are re-derived from it
    /// on every (re)materialisation.
    rtt_fn: Box<dyn Fn(PeerId, PeerId) -> Micros + Send + Sync>,
    cache: BlockCache,
}

impl std::fmt::Debug for HierarchicalWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchicalWorld")
            .field("n", &self.n)
            .field("shards", &self.members.len())
            .field("super_shards", &self.intra_hub.len())
            .field("cache", &self.cache.stats())
            .finish_non_exhaustive()
    }
}

impl HierarchicalWorld {
    /// Build from a shard assignment, the level-1 hub summary (as a
    /// function — it is *not* stored densely), and an exact pairwise
    /// latency function retained for lazy block fills.
    ///
    /// `shard_of[p]` is peer `p`'s shard; ids must cover `0..S`
    /// (the [`crate::ShardedWorld::NO_SHARD`] sentinel is rejected —
    /// resolve spills before building, as `compress` does).
    /// `super_shards` is clamped to `[1, S]`; shards are grouped into
    /// that many contiguous, balanced runs (shard id order), so the
    /// grouping is a pure function of `(S, super_shards)`.
    /// `hub_rtt_us(a, b)` is the level-1 hub distance in whole µs
    /// (symmetric, zero diagonal) — consulted once per intra-group
    /// pair, per group-medoid scan, and per super-hub pair at build
    /// time, never at query time. `cache_budget_bytes` bounds the
    /// resident block bytes (at least one block is always resident).
    pub fn build_lazy(
        shard_of: &[u32],
        super_shards: usize,
        offset: Vec<f32>,
        hub_rtt_us: impl Fn(usize, usize) -> u64,
        cache_budget_bytes: usize,
        rtt: impl Fn(PeerId, PeerId) -> Micros + Send + Sync + 'static,
    ) -> HierarchicalWorld {
        let n = shard_of.len();
        assert_eq!(offset.len(), n, "one hub offset per peer");
        assert!(
            shard_of.iter().all(|&s| s != crate::ShardedWorld::NO_SHARD),
            "NO_SHARD spills must be resolved before build_lazy"
        );
        let n_shards = shard_of.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let mut members: Vec<Vec<PeerId>> = vec![Vec::new(); n_shards];
        let mut local_of = vec![0u32; n];
        for i in 0..n {
            let s = shard_of[i] as usize;
            local_of[i] = members[s].len() as u32;
            members[s].push(PeerId(i as u32));
        }

        // Contiguous balanced grouping: the first `S % G` groups get
        // one extra shard. Pure in (S, G) — no RNG, no data dependence
        // — so the same spec always yields the same hierarchy.
        let g = super_shards.clamp(1, n_shards);
        let (base, extra) = (n_shards / g, n_shards % g);
        let mut super_of = vec![0u32; n_shards];
        let mut local_shard = vec![0u32; n_shards];
        let mut group_shards: Vec<Vec<usize>> = Vec::with_capacity(g);
        let mut next = 0usize;
        for group in 0..g {
            let size = base + usize::from(group < extra);
            let run: Vec<usize> = (next..next + size).collect();
            for (i, &s) in run.iter().enumerate() {
                super_of[s] = group as u32;
                local_shard[s] = i as u32;
            }
            next += size;
            group_shards.push(run);
        }

        // Per-group dense hub matrices and super-hub election (the
        // hub-level medoid, ties by lowest shard id).
        let mut intra_hub: Vec<Vec<f32>> = Vec::with_capacity(g);
        let mut super_hub_shard = vec![0u32; g];
        let mut super_offset = vec![0.0f32; n_shards];
        for (group, run) in group_shards.iter().enumerate() {
            let gs = run.len();
            let mut hub = vec![0.0f32; gs * gs];
            for i in 0..gs {
                for j in (i + 1)..gs {
                    let v = hub_rtt_us(run[i], run[j]) as f32;
                    hub[i * gs + j] = v;
                    hub[j * gs + i] = v;
                }
            }
            let medoid = run
                .iter()
                .copied()
                .min_by_key(|&c| {
                    let total: u64 = run.iter().map(|&t| hub_rtt_us(c, t)).sum();
                    (total, c)
                })
                .unwrap_or(0);
            super_hub_shard[group] = medoid as u32;
            for &s in run {
                super_offset[s] = hub_rtt_us(s, medoid) as f32;
            }
            intra_hub.push(hub);
        }
        let mut super_rtt = vec![0.0f32; g * g];
        for a in 0..g {
            for b in (a + 1)..g {
                let v =
                    hub_rtt_us(super_hub_shard[a] as usize, super_hub_shard[b] as usize) as f32;
                super_rtt[a * g + b] = v;
                super_rtt[b * g + a] = v;
            }
        }

        let block_bytes: Vec<usize> = members.iter().map(|m| m.len() * m.len() * 4).collect();
        HierarchicalWorld {
            n,
            members,
            shard_of: shard_of.to_vec(),
            local_of,
            offset,
            super_of,
            local_shard,
            intra_hub,
            super_offset,
            super_hub_shard,
            super_rtt,
            rtt_fn: Box::new(rtt),
            cache: BlockCache::new(block_bytes, cache_budget_bytes),
        }
    }

    /// Compress an existing dense matrix under a shard assignment —
    /// the two-level twin of [`crate::ShardedWorld::compress`]: the
    /// level-1 summary comes from per-shard medoid hubs exactly as
    /// there (spills via [`crate::ShardedWorld::NO_SHARD`] become
    /// appended singleton overflow shards), then the second level is
    /// grouped/elected on top by [`HierarchicalWorld::build_lazy`].
    pub fn compress(
        matrix: &Arc<LatencyMatrix>,
        shard_of: &[u32],
        super_shards: usize,
        cache_budget_bytes: usize,
    ) -> HierarchicalWorld {
        let n = matrix.len();
        assert_eq!(shard_of.len(), n, "one shard id per peer");
        let real_shards = shard_of
            .iter()
            .filter(|&&s| s != crate::ShardedWorld::NO_SHARD)
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0);
        let mut next_overflow = real_shards as u32;
        let dense_assignment: Vec<u32> = shard_of
            .iter()
            .map(|&s| {
                if s == crate::ShardedWorld::NO_SHARD {
                    let id = next_overflow;
                    next_overflow += 1;
                    id
                } else {
                    s
                }
            })
            .collect();
        let n_shards = (next_overflow as usize).max(real_shards).max(1);
        let mut membership: Vec<Vec<PeerId>> = vec![Vec::new(); n_shards];
        for i in 0..n {
            membership[dense_assignment[i] as usize].push(PeerId(i as u32));
        }
        let hubs: Vec<Option<PeerId>> = membership
            .iter()
            .map(|ms| {
                ms.iter().copied().min_by_key(|&c| {
                    let total: u64 = ms.iter().map(|&m| matrix.rtt(c, m).as_us()).sum();
                    (total, c)
                })
            })
            .collect();
        let offset: Vec<f32> = (0..n)
            .map(|i| {
                let hub = hubs[dense_assignment[i] as usize].expect("own shard non-empty");
                matrix.rtt(PeerId(i as u32), hub).as_us() as f32
            })
            .collect();
        let m = Arc::clone(matrix);
        HierarchicalWorld::build_lazy(
            &dense_assignment,
            super_shards,
            offset,
            |a, b| match (hubs[a], hubs[b]) {
                (Some(ha), Some(hb)) => matrix.rtt(ha, hb).as_us(),
                _ => 0,
            },
            cache_budget_bytes,
            move |a, b| m.rtt(a, b),
        )
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.members.len()
    }

    /// Number of super-shards (groups).
    pub fn n_super_shards(&self) -> usize {
        self.intra_hub.len()
    }

    /// Size of the largest shard block.
    pub fn max_shard_len(&self) -> usize {
        self.members.iter().map(|m| m.len()).max().unwrap_or(0)
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.n as u32).map(PeerId)
    }

    /// Block-cache telemetry (hits/misses/evictions/residency).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Total bytes of all blocks if every one were resident at once —
    /// what the cache budget is bounding.
    pub fn total_block_bytes(&self) -> usize {
        self.cache.block_bytes.iter().sum()
    }

    /// The resident (or freshly materialised) block of one shard.
    fn block(&self, s: usize) -> Arc<Vec<f32>> {
        if let Some(b) = self.cache.get(s) {
            return b;
        }
        // Materialise OUTSIDE any lock: racing threads may both build
        // the block, but the serial upper-triangle fill is a pure
        // function of the world, so both copies are bit-identical and
        // either may serve.
        let data = Arc::new(self.materialise(s));
        self.cache.insert(s, data)
    }

    /// Serial upper-triangle fill + mirror — the same bytes the
    /// one-level backend's parallel fill produces (the fill recipe is
    /// value-identical at any thread count), just computed on demand.
    fn materialise(&self, s: usize) -> Vec<f32> {
        let ms = &self.members[s];
        let m = ms.len();
        let mut data = vec![0.0f32; m * m];
        for i in 0..m {
            for j in (i + 1)..m {
                let v = (self.rtt_fn)(ms[i], ms[j]).as_us() as f32;
                data[i * m + j] = v;
                data[j * m + i] = v;
            }
        }
        data
    }

    /// Check summary symmetry/zero-diagonal/finiteness and grouping
    /// sanity; used by tests and debug builds. Does not materialise
    /// blocks.
    pub fn validate(&self) -> Result<(), String> {
        for (g, hub) in self.intra_hub.iter().enumerate() {
            let gs = (hub.len() as f64).sqrt() as usize;
            if gs * gs != hub.len() {
                return Err(format!("group {g}: non-square hub matrix"));
            }
            for i in 0..gs {
                if hub[i * gs + i] != 0.0 {
                    return Err(format!("group {g}: non-zero hub diagonal at {i}"));
                }
                for j in (i + 1)..gs {
                    let (a, b) = (hub[i * gs + j], hub[j * gs + i]);
                    if a != b {
                        return Err(format!("group {g}: hub asymmetry at ({i},{j})"));
                    }
                    if a < 0.0 || !a.is_finite() {
                        return Err(format!("group {g}: invalid hub latency at ({i},{j}): {a}"));
                    }
                }
            }
        }
        let g = self.intra_hub.len();
        for a in 0..g {
            if self.super_rtt[a * g + a] != 0.0 {
                return Err(format!("non-zero super diagonal at {a}"));
            }
            for b in (a + 1)..g {
                if self.super_rtt[a * g + b] != self.super_rtt[b * g + a] {
                    return Err(format!("super asymmetry at ({a},{b})"));
                }
            }
        }
        for (group, &hub_shard) in self.super_hub_shard.iter().enumerate() {
            if self.super_of[hub_shard as usize] as usize != group {
                return Err(format!("group {group}: super-hub shard outside the group"));
            }
            if self.super_offset[hub_shard as usize] != 0.0 {
                return Err(format!("group {group}: super-hub shard has non-zero offset"));
            }
        }
        if let Some(bad) = self.offset.iter().find(|o| !o.is_finite() || **o < 0.0) {
            return Err(format!("invalid hub offset {bad}"));
        }
        Ok(())
    }
}

impl ShardView for HierarchicalWorld {
    fn n_shards(&self) -> usize {
        self.members.len()
    }

    fn shard_of(&self, p: PeerId) -> usize {
        self.shard_of[p.idx()] as usize
    }

    fn shard_members(&self, shard: usize) -> &[PeerId] {
        &self.members[shard]
    }

    #[inline]
    fn hub_offset_us(&self, p: PeerId) -> u64 {
        self.offset[p.idx()] as u64
    }

    /// The *composed* hub distance: intra-group pairs read the group's
    /// dense hub matrix; cross-group pairs reassemble the super-hub
    /// detour in `u64` µs. This keeps the level-1 [`ShardView`]
    /// contract — `rtt = offset + hub_rtt_us + offset` for all
    /// inter-shard pairs — true verbatim at level 2, which is what
    /// lets the shard-local Meridian fill (and every other `ShardView`
    /// consumer) run unchanged, bit-identically, over this backend.
    #[inline]
    fn hub_rtt_us(&self, a: usize, b: usize) -> u64 {
        let (ga, gb) = (self.super_of[a] as usize, self.super_of[b] as usize);
        if ga == gb {
            let hub = &self.intra_hub[ga];
            let gs = (hub.len() as f64).sqrt() as usize;
            hub[self.local_shard[a] as usize * gs + self.local_shard[b] as usize] as u64
        } else {
            self.super_offset[a] as u64
                + self.super_rtt[ga * self.intra_hub.len() + gb] as u64
                + self.super_offset[b] as u64
        }
    }

    fn hub_peer(&self, shard: usize) -> Option<PeerId> {
        self.members[shard]
            .iter()
            .copied()
            .min_by_key(|&m| (self.offset[m.idx()] as u64, m))
    }

    fn n_super_shards(&self) -> usize {
        self.intra_hub.len()
    }

    fn super_of(&self, shard: usize) -> usize {
        self.super_of[shard] as usize
    }

    #[inline]
    fn super_offset_us(&self, shard: usize) -> u64 {
        self.super_offset[shard] as u64
    }

    #[inline]
    fn super_rtt_us(&self, a: usize, b: usize) -> u64 {
        self.super_rtt[a * self.intra_hub.len() + b] as u64
    }
}

impl WorldStore for HierarchicalWorld {
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        let (sa, sb) = (self.shard_of[a.idx()] as usize, self.shard_of[b.idx()] as usize);
        if sa == sb {
            let blk = self.block(sa);
            let m = self.members[sa].len();
            Micros(blk[self.local_of[a.idx()] as usize * m + self.local_of[b.idx()] as usize] as u64)
        } else {
            Micros(
                self.offset[a.idx()] as u64
                    + ShardView::hub_rtt_us(self, sa, sb)
                    + self.offset[b.idx()] as u64,
            )
        }
    }

    /// Structural footprint: summaries + index arrays + the block
    /// cache at its budget ceiling (or all blocks, if they fit). A
    /// *fixed* function of the world — deliberately not the live
    /// resident-byte count, which depends on scheduling, so that
    /// capacity telemetry stays bit-identical across runs and thread
    /// counts.
    fn approx_bytes(&self) -> usize {
        let summaries: usize = self.intra_hub.iter().map(|h| h.len() * 4).sum::<usize>()
            + self.super_rtt.len() * 4
            + (self.super_of.len() + self.local_shard.len() + self.super_offset.len()
                + self.super_hub_shard.len())
                * 4;
        let indexes =
            (self.shard_of.len() + self.local_of.len() + self.offset.len()) * 4 + self.n * 4;
        summaries + indexes + self.total_block_bytes().min(self.cache.budget_bytes)
    }

    fn shard_view(&self) -> Option<&dyn ShardView> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedWorld;

    /// The sharded module's star fixture, one level up: shard = id/4,
    /// offset `1 + id%4` ms, hub-to-hub `10·|sa−sb|` ms.
    fn star_rtt(a: PeerId, b: PeerId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        let (sa, sb) = (a.0 / 4, b.0 / 4);
        let off = |p: PeerId| Micros::from_ms_u64(1 + (p.0 % 4) as u64);
        if sa == sb {
            off(a) + off(b)
        } else {
            off(a) + Micros::from_ms_u64(10 * (sa as i64 - sb as i64).unsigned_abs()) + off(b)
        }
    }

    fn star_hub_us(a: usize, b: usize) -> u64 {
        10_000 * (a as i64 - b as i64).unsigned_abs()
    }

    fn star_hier(n_shards: u32, super_shards: usize, budget: usize) -> HierarchicalWorld {
        let n = (n_shards * 4) as usize;
        let shard_of: Vec<u32> = (0..n as u32).map(|i| i / 4).collect();
        let offset: Vec<f32> = (0..n as u32).map(|i| (1_000 + 1_000 * (i % 4)) as f32).collect();
        HierarchicalWorld::build_lazy(&shard_of, super_shards, offset, star_hub_us, budget, star_rtt)
    }

    fn star_sharded(n_shards: u32) -> ShardedWorld {
        let n = (n_shards * 4) as usize;
        let shard_of: Vec<u32> = (0..n as u32).map(|i| i / 4).collect();
        let s = n_shards as usize;
        let mut hub = vec![0.0f32; s * s];
        for a in 0..s {
            for b in 0..s {
                hub[a * s + b] = star_hub_us(a, b) as f32;
            }
        }
        let offset: Vec<f32> = (0..n as u32).map(|i| (1_000 + 1_000 * (i % 4)) as f32).collect();
        ShardedWorld::build_par(&shard_of, hub, offset, 2, star_rtt)
    }

    #[test]
    fn one_super_shard_is_bit_identical_to_sharded() {
        let hier = star_hier(5, 1, usize::MAX);
        let flat = star_sharded(5);
        hier.validate().expect("valid");
        assert_eq!(hier.n_super_shards(), 1);
        let members: Vec<PeerId> = hier.peers().collect();
        for a in hier.peers() {
            for b in hier.peers() {
                assert_eq!(hier.rtt(a, b), flat.rtt(a, b), "rtt({a},{b})");
            }
            assert_eq!(
                hier.nearest_within(a, &members),
                WorldStore::nearest_within(&flat, a, &members)
            );
        }
        // The ShardView components agree too — the shard-local fill
        // reads these, not rtt.
        for a in hier.peers() {
            assert_eq!(
                ShardView::hub_offset_us(&hier, a),
                ShardView::hub_offset_us(&flat, a)
            );
        }
        for sa in 0..5 {
            assert_eq!(ShardView::hub_peer(&hier, sa), ShardView::hub_peer(&flat, sa));
            for sb in 0..5 {
                assert_eq!(
                    ShardView::hub_rtt_us(&hier, sa, sb),
                    ShardView::hub_rtt_us(&flat, sa, sb)
                );
            }
        }
    }

    #[test]
    fn multi_group_is_exact_inside_groups_and_bounded_across() {
        // 6 shards in 2 groups of 3; cross-group pairs detour through
        // the two group medoids (the middle shards, 1 and 4).
        let hier = star_hier(6, 2, usize::MAX);
        let flat = star_sharded(6);
        hier.validate().expect("valid");
        assert_eq!(hier.n_super_shards(), 2);
        assert_eq!(hier.super_hub_shard, vec![1, 4]);
        for a in hier.peers() {
            for b in hier.peers() {
                let (sa, sb) = (ShardView::shard_of(&hier, a), ShardView::shard_of(&hier, b));
                let (ga, gb) = (ShardView::super_of(&hier, sa), ShardView::super_of(&hier, sb));
                if ga == gb {
                    assert_eq!(hier.rtt(a, b), flat.rtt(a, b), "intra-group must be exact");
                } else {
                    // Detour bound, one level up: never an
                    // underestimate, off by at most the two endpoints'
                    // super-hub detours, doubled.
                    let bound = flat.rtt(a, b).as_us()
                        + 2 * (ShardView::super_offset_us(&hier, sa)
                            + ShardView::super_offset_us(&hier, sb));
                    assert!(hier.rtt(a, b) >= flat.rtt(a, b), "underestimated {a}->{b}");
                    assert!(
                        hier.rtt(a, b).as_us() <= bound,
                        "error beyond the level-2 detour bound for {a}->{b}"
                    );
                    // And the contract the level-2 ShardView documents.
                    let sum = ShardView::super_offset_us(&hier, sa)
                        + ShardView::super_rtt_us(&hier, ga, gb)
                        + ShardView::super_offset_us(&hier, sb);
                    assert_eq!(ShardView::hub_rtt_us(&hier, sa, sb), sum);
                }
            }
        }
    }

    #[test]
    fn tiny_cache_budget_serves_identical_bytes_under_eviction() {
        // Budget of one 4-peer block (64 bytes): every shard switch
        // evicts, and the answers must not change by a bit.
        let unbounded = star_hier(6, 2, usize::MAX);
        let starved = star_hier(6, 2, 64);
        for a in starved.peers() {
            for b in starved.peers() {
                assert_eq!(starved.rtt(a, b), unbounded.rtt(a, b), "rtt({a},{b})");
            }
        }
        let stats = starved.cache_stats();
        assert!(stats.evictions > 0, "64-byte budget over 6 blocks must evict");
        assert!(stats.resident_bytes <= 64, "over budget: {stats:?}");
        assert_eq!(stats.resident_blocks, 1);
        // Re-query: the resident block serves hits.
        let before = starved.cache_stats().hits;
        let _ = starved.rtt(PeerId(0), PeerId(1));
        let _ = starved.rtt(PeerId(0), PeerId(2));
        assert!(starved.cache_stats().hits >= before + 1);
    }

    #[test]
    fn all_singleton_shards_match_the_generating_rule() {
        // One peer per shard: no blocks at all — every path runs
        // through the (here exact) two-level summary.
        let n = 12u32;
        let shard_of: Vec<u32> = (0..n).collect();
        let flat_rtt = |a: PeerId, b: PeerId| {
            Micros::from_ms_u64(10 * (a.0 as i64 - b.0 as i64).unsigned_abs())
        };
        let w = HierarchicalWorld::build_lazy(
            &shard_of,
            1,
            vec![0.0; n as usize],
            star_hub_us,
            usize::MAX,
            flat_rtt,
        );
        w.validate().expect("valid");
        assert_eq!(w.n_shards(), 12);
        assert_eq!(w.max_shard_len(), 1);
        for a in w.peers() {
            for b in w.peers() {
                assert_eq!(w.rtt(a, b), flat_rtt(a, b));
            }
        }
        assert_eq!(w.cache_stats().misses, 0, "singletons never materialise blocks");
    }

    #[test]
    fn compress_matches_sharded_compress_at_one_super_shard() {
        let n = 16usize;
        let dense = Arc::new(LatencyMatrix::build(n, star_rtt));
        // Last four peers unassigned → singleton overflow shards, the
        // same spill path ShardedWorld::compress takes.
        let shard_of: Vec<u32> = (0..n as u32)
            .map(|i| if i < 12 { i / 4 } else { ShardedWorld::NO_SHARD })
            .collect();
        let hier = HierarchicalWorld::compress(&dense, &shard_of, 1, usize::MAX);
        let flat = ShardedWorld::compress(&dense, &shard_of, 2);
        hier.validate().expect("valid");
        assert_eq!(hier.n_shards(), 7);
        for a in dense.peers() {
            for b in dense.peers() {
                assert_eq!(hier.rtt(a, b), flat.rtt(a, b), "rtt({a},{b})");
            }
        }
    }

    #[test]
    fn grouping_is_balanced_and_contiguous() {
        let w = star_hier(7, 3, usize::MAX);
        // 7 shards in 3 groups: sizes 3, 2, 2, contiguous by shard id.
        assert_eq!(w.n_super_shards(), 3);
        let groups: Vec<usize> = (0..7).map(|s| ShardView::super_of(&w, s)).collect();
        assert_eq!(groups, vec![0, 0, 0, 1, 1, 2, 2]);
        // Clamping: more groups than shards degrades to singletons.
        let clamped = star_hier(3, 64, usize::MAX);
        assert_eq!(clamped.n_super_shards(), 3);
    }

    #[test]
    fn approx_bytes_is_fixed_and_budget_capped() {
        let a = star_hier(6, 2, 64);
        let b = star_hier(6, 2, 64);
        // Touch blocks on one copy only: telemetry must not move.
        let before = a.approx_bytes();
        for p in a.peers() {
            let _ = a.rtt(p, PeerId(0));
        }
        assert_eq!(a.approx_bytes(), before, "approx_bytes must ignore residency");
        assert_eq!(a.approx_bytes(), b.approx_bytes());
        // An unbounded twin reports the full block set instead.
        let unbounded = star_hier(6, 2, usize::MAX);
        assert!(unbounded.approx_bytes() > a.approx_bytes());
        assert_eq!(unbounded.total_block_bytes(), 6 * 64);
    }

    #[test]
    fn default_shard_view_level2_is_the_single_super_shard() {
        // The defaulted level-2 methods on any one-level ShardView
        // (here ShardedWorld) describe exactly one super-shard.
        let flat = star_sharded(3);
        let view: &dyn ShardView = &flat;
        assert_eq!(view.n_super_shards(), 1);
        for s in 0..3 {
            assert_eq!(view.super_of(s), 0);
            assert_eq!(view.super_offset_us(s), 0);
        }
        assert_eq!(view.super_rtt_us(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "NO_SHARD")]
    fn build_lazy_rejects_the_spill_sentinel() {
        HierarchicalWorld::build_lazy(
            &[0, ShardedWorld::NO_SHARD],
            1,
            vec![0.0, 0.0],
            |_, _| 0,
            usize::MAX,
            star_rtt,
        );
    }
}
