//! The latency-backend abstraction.
//!
//! The paper's simulations consume one object: "an inter-peer latency
//! matrix with about 2500 peers". At that scale a dense `n×n` `f32`
//! array ([`crate::LatencyMatrix`]) is 25 MB and ideal; at the
//! production scales the ROADMAP targets it is quadratic death — 40 GB
//! at 100 k peers. [`WorldStore`] abstracts what every consumer (the
//! probe-counted [`crate::Target`], the ground-truth
//! [`crate::NearestCache`], the Meridian overlay fill, the batch query
//! runner) actually needs — peer count, pairwise RTT, and the derived
//! nearest/k-NN/count queries — so dense and block-compressed backends
//! ([`crate::ShardedWorld`]) interchange freely.
//!
//! The trait is object-safe on purpose: [`crate::Target`] holds a
//! `&dyn WorldStore`, which keeps every `NearestPeerAlgo`
//! implementation backend-agnostic without turning the whole algorithm
//! stack generic.
//!
//! # Contract
//!
//! * `rtt` is symmetric with a zero diagonal, finite, and expressed in
//!   whole microseconds (it came out of [`Micros`]);
//! * peer ids are dense: `0..len()`;
//! * `nearest_within` and friends must agree exactly with a scalar scan
//!   over `rtt` with ties broken by lowest [`PeerId`] — the provided
//!   defaults guarantee this by construction, and backends that
//!   override for speed (the dense row gather) are property-tested
//!   against the defaults.

use crate::matrix::PeerId;
use crate::scan;
use np_util::Micros;

/// A queryable latency world: the backend behind scenarios, targets,
/// overlays and ground-truth caches.
pub trait WorldStore: Sync {
    /// Number of peers; ids are `0..len()`.
    fn len(&self) -> usize;

    /// Round-trip latency between two peers (zero on the diagonal).
    fn rtt(&self, a: PeerId, b: PeerId) -> Micros;

    /// Approximate heap footprint of the backend in bytes — the number
    /// the sharded backend exists to shrink. Capacity telemetry only.
    fn approx_bytes(&self) -> usize;

    /// True iff the world holds no peers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The nearest peer to `target` **within `members`**, excluding
    /// `target` itself; ties broken by lowest id; `None` if `members`
    /// contains no other peer.
    ///
    /// Default: gather the member distances (whole-µs values are exact
    /// in `f32`) and run the shared [`scan`] kernel.
    fn nearest_within(&self, target: PeerId, members: &[PeerId]) -> Option<PeerId> {
        let dists: Vec<f32> = members
            .iter()
            .map(|&m| {
                if m == target {
                    f32::INFINITY
                } else {
                    self.rtt(target, m).as_us() as f32
                }
            })
            .collect();
        scan::nearest_in(&dists, members)
    }

    /// The `k` nearest peers to `target` within `members` (ascending
    /// RTT, ties by id), excluding `target`.
    fn knn_within(&self, target: PeerId, members: &[PeerId], k: usize) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = members.iter().copied().filter(|&m| m != target).collect();
        v.sort_by_key(|&m| (self.rtt(target, m), m));
        v.truncate(k);
        v
    }

    /// Largest pairwise RTT — the metric-space diameter the §2.2
    /// diagnostics normalise against. Default scans all pairs (O(n²)
    /// `rtt` calls); the dense backend overrides with a flat array max.
    fn diameter(&self) -> Micros {
        let n = self.len() as u32;
        let mut max = Micros::ZERO;
        for a in 0..n {
            for b in (a + 1)..n {
                let d = self.rtt(PeerId(a), PeerId(b));
                if d > max {
                    max = d;
                }
            }
        }
        max
    }

    /// Number of peers in `members` strictly closer to `target` than `d`.
    fn count_within(&self, target: PeerId, members: &[PeerId], d: Micros) -> usize {
        members
            .iter()
            .filter(|&&m| m != target && self.rtt(target, m) < d)
            .count()
    }

    /// The backend's shard structure, when it has one. The dense matrix
    /// (and any other flat backend) returns `None`; the block-compressed
    /// [`crate::ShardedWorld`] returns itself. This is the object-safe
    /// bridge that lets consumers holding a `&dyn WorldStore` (the
    /// experiment factories) discover shard locality — e.g. the Meridian
    /// shard-local overlay fill — without the algorithm stack going
    /// generic over the backend.
    fn shard_view(&self) -> Option<&dyn ShardView> {
        None
    }
}

/// Shard structure exposed by block-compressed backends: membership and
/// iteration (`shard_of`, `shard_members`), the hub summary the
/// inter-shard distances are reassembled from, and the per-shard hub
/// ids. Everything a *shard-local* consumer needs to reproduce
/// [`WorldStore::rtt`] without touching a dense row:
///
/// * intra-shard pairs read the shard's dense block (via
///   [`WorldStore::rtt`], which is O(1) there);
/// * inter-shard pairs are `hub_offset_us(a) + hub_rtt_us(s(a), s(b)) +
///   hub_offset_us(b)` — **exactly** the `u64` microsecond sum `rtt`
///   computes, so shard-local reconstruction is bit-identical, not
///   approximate.
pub trait ShardView: WorldStore {
    /// Number of shards.
    fn n_shards(&self) -> usize;

    /// The shard a peer belongs to.
    fn shard_of(&self, p: PeerId) -> usize;

    /// Members of one shard, ascending id.
    fn shard_members(&self, shard: usize) -> &[PeerId];

    /// Peer → its shard hub latency in whole µs (the stored component,
    /// truncated exactly as [`WorldStore::rtt`] sums it).
    fn hub_offset_us(&self, p: PeerId) -> u64;

    /// Hub-to-hub latency in whole µs (zero on the diagonal).
    fn hub_rtt_us(&self, a: usize, b: usize) -> u64;

    /// The shard's hub id: the member closest to its hub (minimum
    /// offset, ties by lowest id). For worlds built by
    /// `ShardedWorld::compress` this is the medoid itself (offset 0);
    /// `None` for an empty shard.
    fn hub_peer(&self, shard: usize) -> Option<PeerId>;

    // ---- Level 2: super-shard structure -------------------------------
    //
    // Two-level backends (`crate::HierarchicalWorld`) group shards into
    // super-shards and reassemble *hub-to-hub* distances for shards in
    // different groups as
    //
    //   hub_rtt_us(a, b) == super_offset_us(a)
    //                     + super_rtt_us(super_of(a), super_of(b))
    //                     + super_offset_us(b)
    //
    // **exactly**, as a `u64` microsecond sum. Because the composition
    // happens *inside* `hub_rtt_us`, level-1 consumers (the shard-local
    // Meridian fill, the spill-detour analysis) keep working verbatim —
    // they never need to know a second level exists. One-level backends
    // are, by these defaults, a single super-shard containing every
    // shard, with all level-2 components zero.

    /// Number of super-shards. One-level backends are one big group.
    fn n_super_shards(&self) -> usize {
        1
    }

    /// The super-shard a shard belongs to.
    fn super_of(&self, _shard: usize) -> usize {
        0
    }

    /// Shard hub → its super-hub latency in whole µs (the stored
    /// level-2 component; zero for a one-level backend).
    fn super_offset_us(&self, _shard: usize) -> u64 {
        0
    }

    /// Super-hub-to-super-hub latency in whole µs (zero diagonal; zero
    /// everywhere for a one-level backend).
    fn super_rtt_us(&self, _a: usize, _b: usize) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal hand-rolled backend exercising only the defaults.
    struct RingWorld(usize);

    impl WorldStore for RingWorld {
        fn len(&self) -> usize {
            self.0
        }
        fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
            let d = (a.0 as i64 - b.0 as i64).unsigned_abs();
            Micros::from_ms_u64(d.min(self.0 as u64 - d))
        }
        fn approx_bytes(&self) -> usize {
            std::mem::size_of::<usize>()
        }
    }

    #[test]
    fn default_nearest_excludes_target_and_breaks_ties_low() {
        let w = RingWorld(10);
        let members: Vec<PeerId> = (0..10).map(PeerId).collect();
        // Peer 5's ring neighbours 4 and 6 are equidistant; lowest wins.
        assert_eq!(w.nearest_within(PeerId(5), &members), Some(PeerId(4)));
        // Wrap-around: 0's neighbours are 1 and 9, both at 1 ms.
        assert_eq!(w.nearest_within(PeerId(0), &members), Some(PeerId(1)));
        assert_eq!(w.nearest_within(PeerId(3), &[PeerId(3)]), None);
        assert!(!w.is_empty());
    }

    #[test]
    fn default_knn_and_count() {
        let w = RingWorld(8);
        let members: Vec<PeerId> = (0..8).map(PeerId).collect();
        assert_eq!(
            w.knn_within(PeerId(0), &members, 3),
            vec![PeerId(1), PeerId(7), PeerId(2)]
        );
        assert_eq!(
            w.count_within(PeerId(0), &members, Micros::from_ms_u64(2)),
            2
        );
    }

    #[test]
    fn dyn_object_usable() {
        let w = RingWorld(4);
        let dynw: &dyn WorldStore = &w;
        assert_eq!(dynw.len(), 4);
        assert_eq!(dynw.rtt(PeerId(1), PeerId(2)), Micros::from_ms_u64(1));
    }
}
