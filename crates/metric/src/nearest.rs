//! The nearest-peer search API.
//!
//! Paper setup (§4): an overlay of ~2,400 peers is built from a latency
//! matrix; ~100 held-out peers act as *targets*; a query must find the
//! overlay member closest to a given target. Crucially, an algorithm can
//! learn a target's latencies **only by probing** — "for a peer to tell if
//! it is the closest peer to A2, it has to first measure its latency to
//! A2". [`Target`] enforces that: every RTT lookup involving the target
//! increments a probe counter, and [`QueryOutcome`] reports the totals
//! that the paper's cost argument (brute-force probing inside a cluster)
//! is about.
//!
//! Inter-*member* latencies are treated as known (learned during overlay
//! maintenance) and are read directly from the matrix by the algorithms.

use crate::matrix::{LatencyMatrix, PeerId};
use crate::world::WorldStore;
use np_util::rng::splitmix64;
use np_util::Micros;
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed tag isolating the probe fault stream from every other stream.
const FAULT_TAG: u64 = 0x464C_5459; // "FLTY"

/// Deterministic probe fault injection: each probe attempt is dropped
/// with probability `loss`, decided by a pure hash of
/// `(seed, prober, target, attempt)` — no RNG object, no ordering
/// dependence — so fault patterns are bit-identical at any thread
/// count and on every backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-attempt drop probability in `[0, 1)`.
    pub loss: f64,
    /// Attempts per logical probe before the prober gives up (≥ 1).
    /// Each attempt is counted by the target's [`ProbeCounter`] — lost
    /// probes still cost the paper's cost axis.
    pub attempts: u32,
    /// The fault stream's seed (callers derive it per query via
    /// `item_seed`, so queries observe independent loss patterns).
    pub seed: u64,
}

impl FaultPlan {
    /// Does attempt `attempt` of a probe from `prober` to `target`
    /// get dropped? Pure function of the plan and arguments.
    pub fn dropped(&self, prober: PeerId, target: PeerId, attempt: u32) -> bool {
        if self.loss <= 0.0 {
            return false;
        }
        let pair = (u64::from(prober.0) << 32) | u64::from(target.0);
        let h = splitmix64(self.seed ^ splitmix64(FAULT_TAG ^ pair) ^ u64::from(attempt));
        // Top 53 bits → uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.loss
    }
}

/// Counts latency probes to a query target.
///
/// Atomic (rather than `Cell`) so a [`Target`] is `Sync` and the
/// batch-parallel query runner can hold targets in shared state.
/// `Relaxed` ordering is sufficient throughout: probe counting is pure
/// commutative accumulation — no other memory access is ordered
/// against a bump, and the total is only read after the query's
/// threads are joined (the join itself provides the happens-before
/// edge that makes the final count visible).
#[derive(Debug, Default)]
pub struct ProbeCounter {
    count: AtomicU64,
}

impl ProbeCounter {
    /// Record one probe.
    #[inline]
    pub fn bump(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Probes recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// A query target: a peer outside the overlay whose latencies are only
/// observable through counted probes.
///
/// Holds its world as a `&dyn` [`WorldStore`], so every
/// [`NearestPeerAlgo`] implementation works unchanged over the dense
/// matrix and the block-compressed [`crate::ShardedWorld`] alike.
pub struct Target<'a> {
    id: PeerId,
    world: &'a dyn WorldStore,
    counter: ProbeCounter,
    faults: Option<FaultPlan>,
}

impl<'a> Target<'a> {
    /// Wrap `id` as a probe-counted target over `world` (any latency
    /// backend; `&LatencyMatrix` coerces). Probes never fail.
    pub fn new(id: PeerId, world: &'a dyn WorldStore) -> Target<'a> {
        Target {
            id,
            world,
            counter: ProbeCounter::default(),
            faults: None,
        }
    }

    /// Like [`Target::new`], but probes fail according to `faults`.
    /// Algorithms that probe through [`Target::try_probe_from`] observe
    /// the losses; the infallible [`Target::probe_from`] remains exact
    /// (legacy algorithms keep working, they just don't see faults).
    pub fn with_faults(id: PeerId, world: &'a dyn WorldStore, faults: FaultPlan) -> Target<'a> {
        Target {
            id,
            world,
            counter: ProbeCounter::default(),
            faults: Some(faults),
        }
    }

    /// The target's peer id (identity is public; latency is not).
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Measure the RTT from `prober` to the target. Counted.
    pub fn probe_from(&self, prober: PeerId) -> Micros {
        self.counter.bump();
        self.world.rtt(prober, self.id)
    }

    /// Measure the RTT from `prober` to the target through the fault
    /// plan, retrying up to the plan's attempt budget. Every attempt —
    /// lost or not — bumps the probe counter. `None` when all attempts
    /// were dropped (the prober sees a dead peer); without a fault
    /// plan this is exactly one [`Target::probe_from`].
    pub fn try_probe_from(&self, prober: PeerId) -> Option<Micros> {
        match self.faults {
            None => Some(self.probe_from(prober)),
            Some(plan) => {
                for attempt in 0..plan.attempts.max(1) {
                    self.counter.bump();
                    if !plan.dropped(prober, self.id, attempt) {
                        return Some(self.world.rtt(prober, self.id));
                    }
                }
                None
            }
        }
    }

    /// Probes spent on this target so far.
    pub fn probes(&self) -> u64 {
        self.counter.count()
    }
}

/// The result of one nearest-peer query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The overlay member the algorithm selected.
    pub found: PeerId,
    /// RTT from the found peer to the target (as measured by the final
    /// probe — i.e. ground truth, since probes are noise-free in the
    /// matrix worlds).
    pub rtt_to_target: Micros,
    /// Number of latency probes to the target the query consumed.
    pub probes: u64,
    /// Number of times the query was forwarded between overlay members.
    pub hops: u32,
}

/// A nearest-peer search algorithm over a fixed overlay.
///
/// Implementations: Meridian (`np-meridian`), the Vivaldi/PIC greedy walk
/// (`np-coords`), Karger–Ruhl, Tapestry, Tiers and Beaconing
/// (`np-baselines`), and the remedy-augmented hybrid (`np-core`).
///
/// `Sync` is a supertrait: the batch query runner shares one algorithm
/// instance across worker threads, so per-query mutable state must live
/// in the `rng` parameter or the [`Target`], never in `&self`.
pub trait NearestPeerAlgo: Sync {
    /// Short name for tables ("meridian", "tiers", ...).
    fn name(&self) -> &str;

    /// The overlay membership this instance was built over.
    fn members(&self) -> &[PeerId];

    /// Resolve a closest-member query for `target`.
    ///
    /// `rng` drives the random starting peer (the paper: "initiates a
    /// closest-peer query at a random peer") and any internal tie
    /// breaking; determinism comes from the caller's seed discipline.
    fn find_nearest(&self, target: &Target<'_>, rng: &mut StdRng) -> QueryOutcome;
}

/// References delegate, so generic wrappers (e.g. the hybrid) can own
/// or borrow their inner algorithm interchangeably.
impl<A: NearestPeerAlgo + ?Sized> NearestPeerAlgo for &A {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn members(&self) -> &[PeerId] {
        (**self).members()
    }
    fn find_nearest(&self, target: &Target<'_>, rng: &mut StdRng) -> QueryOutcome {
        (**self).find_nearest(target, rng)
    }
}

/// Boxes delegate too — the [`crate::world::WorldStore`]-agnostic
/// factory registry hands out `Box<dyn NearestPeerAlgo>`s.
impl<A: NearestPeerAlgo + ?Sized> NearestPeerAlgo for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn members(&self) -> &[PeerId] {
        (**self).members()
    }
    fn find_nearest(&self, target: &Target<'_>, rng: &mut StdRng) -> QueryOutcome {
        (**self).find_nearest(target, rng)
    }
}

/// Brute force: probe every member. The optimal-accuracy / worst-cost
/// reference point — under the clustering condition the paper argues all
/// latency-only algorithms degenerate towards this.
///
/// Generic over the latency backend (defaulting to the dense matrix),
/// so it is also the reference algorithm for sharded worlds too large
/// to materialise densely.
pub struct BruteForce<'m, W: WorldStore + ?Sized = LatencyMatrix> {
    world: &'m W,
    members: Vec<PeerId>,
}

impl<'m, W: WorldStore + ?Sized> BruteForce<'m, W> {
    pub fn new(world: &'m W, members: Vec<PeerId>) -> Self {
        assert!(!members.is_empty(), "empty overlay");
        BruteForce { world, members }
    }

    /// The backing world (exposed for the runner's ground-truth checks).
    pub fn world(&self) -> &W {
        self.world
    }
}

impl<W: WorldStore + ?Sized> NearestPeerAlgo for BruteForce<'_, W> {
    fn name(&self) -> &str {
        "brute-force"
    }

    fn members(&self) -> &[PeerId] {
        &self.members
    }

    fn find_nearest(&self, target: &Target<'_>, _rng: &mut StdRng) -> QueryOutcome {
        let mut best: Option<(Micros, PeerId)> = None;
        let mut fallback: Option<PeerId> = None;
        for &m in &self.members {
            if m == target.id() {
                continue;
            }
            fallback.get_or_insert(m);
            // Dead peers (all probe attempts lost) are skipped, not
            // fatal: brute force degrades to "best among responders".
            let Some(d) = target.try_probe_from(m) else {
                continue;
            };
            if best.map(|(bd, bp)| (d, m) < (bd, bp)).unwrap_or(true) {
                best = Some((d, m));
            }
        }
        let (rtt, found) = best.unwrap_or_else(|| {
            // Every member unreachable: answer *something* (the first
            // candidate) with an infinite measured RTT rather than
            // panicking mid-batch.
            (
                Micros::INFINITY,
                fallback.expect("overlay has at least one other member"),
            )
        });
        QueryOutcome {
            found,
            rtt_to_target: rtt,
            probes: target.probes(),
            hops: 0,
        }
    }
}

/// Random selection: probe one random member. The zero-intelligence
/// reference point (lower bound on accuracy).
pub struct RandomChoice<'m, W: WorldStore + ?Sized = LatencyMatrix> {
    world: &'m W,
    members: Vec<PeerId>,
}

impl<'m, W: WorldStore + ?Sized> RandomChoice<'m, W> {
    pub fn new(world: &'m W, members: Vec<PeerId>) -> Self {
        assert!(!members.is_empty(), "empty overlay");
        RandomChoice { world, members }
    }
}

impl<W: WorldStore + ?Sized> NearestPeerAlgo for RandomChoice<'_, W> {
    fn name(&self) -> &str {
        "random"
    }

    fn members(&self) -> &[PeerId] {
        &self.members
    }

    fn find_nearest(&self, target: &Target<'_>, rng: &mut StdRng) -> QueryOutcome {
        use rand::seq::SliceRandom;
        let _ = self.world; // identity only; no latency knowledge used
        let found = loop {
            let &m = self.members.choose(rng).expect("non-empty");
            if m != target.id() {
                break m;
            }
        };
        // A dead pick stays the answer (zero intelligence extends to
        // zero fallback); the measured RTT is just unknown.
        let rtt = target.try_probe_from(found).unwrap_or(Micros::INFINITY);
        QueryOutcome {
            found,
            rtt_to_target: rtt,
            probes: target.probes(),
            hops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_util::rng::rng_from;

    fn line_matrix(n: usize) -> LatencyMatrix {
        LatencyMatrix::build(n, |a, b| {
            Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
        })
    }

    #[test]
    fn target_counts_probes() {
        let m = line_matrix(5);
        let t = Target::new(PeerId(0), &m);
        assert_eq!(t.probes(), 0);
        assert_eq!(t.probe_from(PeerId(3)), Micros::from_ms_u64(3));
        assert_eq!(t.probe_from(PeerId(1)), Micros::from_ms_u64(1));
        assert_eq!(t.probes(), 2);
    }

    #[test]
    fn brute_force_finds_true_nearest_and_probes_everyone() {
        let m = line_matrix(10);
        let members: Vec<PeerId> = (1..10).map(PeerId).collect(); // target 0 excluded
        let algo = BruteForce::new(&m, members);
        let t = Target::new(PeerId(0), &m);
        let out = algo.find_nearest(&t, &mut rng_from(1));
        assert_eq!(out.found, PeerId(1));
        assert_eq!(out.rtt_to_target, Micros::from_ms_u64(1));
        assert_eq!(out.probes, 9);
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn brute_force_skips_target_in_members() {
        let m = line_matrix(4);
        let members: Vec<PeerId> = (0..4).map(PeerId).collect();
        let algo = BruteForce::new(&m, members);
        let t = Target::new(PeerId(2), &m);
        let out = algo.find_nearest(&t, &mut rng_from(1));
        assert_ne!(out.found, PeerId(2), "never returns the target itself");
        assert_eq!(out.probes, 3);
    }

    #[test]
    fn random_choice_uses_one_probe() {
        let m = line_matrix(50);
        let members: Vec<PeerId> = (1..50).map(PeerId).collect();
        let algo = RandomChoice::new(&m, members.clone());
        let mut rng = rng_from(7);
        let t = Target::new(PeerId(0), &m);
        let out = algo.find_nearest(&t, &mut rng);
        assert!(members.contains(&out.found));
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn faultless_try_probe_equals_probe() {
        let m = line_matrix(5);
        let t = Target::new(PeerId(0), &m);
        assert_eq!(t.try_probe_from(PeerId(3)), Some(Micros::from_ms_u64(3)));
        assert_eq!(t.probes(), 1, "one attempt, one bump");
    }

    #[test]
    fn fault_plan_is_deterministic_and_counts_every_attempt() {
        let m = line_matrix(8);
        let plan = FaultPlan {
            loss: 0.5,
            attempts: 3,
            seed: 77,
        };
        let a = Target::with_faults(PeerId(0), &m, plan);
        let b = Target::with_faults(PeerId(0), &m, plan);
        let mut outcomes = Vec::new();
        for p in 1..8u32 {
            let ra = a.try_probe_from(PeerId(p));
            assert_eq!(ra, b.try_probe_from(PeerId(p)), "probe {p} diverged");
            outcomes.push(ra);
        }
        assert_eq!(a.probes(), b.probes());
        // At 50% loss over 7 probers some succeed late or fail; the
        // pure hash must not be degenerate either way.
        assert!(outcomes.iter().any(|o| o.is_some()), "all probes lost");
        assert!(
            a.probes() > 7,
            "retries must be visible in the probe count: {}",
            a.probes()
        );
        // Successful probes still report the exact matrix RTT.
        for (i, o) in outcomes.iter().enumerate() {
            if let Some(d) = o {
                assert_eq!(*d, Micros::from_ms_u64(i as u64 + 1));
            }
        }
    }

    #[test]
    fn total_loss_yields_none_after_the_attempt_budget() {
        let m = line_matrix(3);
        let plan = FaultPlan {
            loss: 1.0,
            attempts: 4,
            seed: 1,
        };
        let t = Target::with_faults(PeerId(0), &m, plan);
        assert_eq!(t.try_probe_from(PeerId(1)), None);
        assert_eq!(t.probes(), 4, "every attempt was counted");
    }

    #[test]
    fn brute_force_skips_dead_peers_and_never_panics() {
        let m = line_matrix(10);
        let members: Vec<PeerId> = (1..10).map(PeerId).collect();
        let algo = BruteForce::new(&m, members.clone());
        // Moderate loss: the best responder wins, no panic.
        let t = Target::with_faults(
            PeerId(0),
            &m,
            FaultPlan {
                loss: 0.4,
                attempts: 2,
                seed: 5,
            },
        );
        let out = algo.find_nearest(&t, &mut rng_from(1));
        assert!(members.contains(&out.found));
        // Total blackout: the fallback answer is returned with an
        // infinite RTT instead of aborting the query batch.
        let dead = Target::with_faults(
            PeerId(0),
            &m,
            FaultPlan {
                loss: 1.0,
                attempts: 2,
                seed: 5,
            },
        );
        let out = algo.find_nearest(&dead, &mut rng_from(1));
        assert_eq!(out.found, PeerId(1), "first candidate is the fallback");
        assert_eq!(out.rtt_to_target, Micros::INFINITY);
        assert_eq!(out.probes, 9 * 2, "two counted attempts per member");
    }

    #[test]
    fn random_choice_is_seed_deterministic() {
        let m = line_matrix(50);
        let members: Vec<PeerId> = (1..50).map(PeerId).collect();
        let algo = RandomChoice::new(&m, members);
        let t1 = Target::new(PeerId(0), &m);
        let t2 = Target::new(PeerId(0), &m);
        let a = algo.find_nearest(&t1, &mut rng_from(42));
        let b = algo.find_nearest(&t2, &mut rng_from(42));
        assert_eq!(a.found, b.found);
    }
}
