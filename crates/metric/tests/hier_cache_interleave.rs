//! Exhaustive interleaving suite for `HierarchicalWorld`'s block
//! cache: the **cold ≡ warm identity** under every schedule.
//!
//! The cache's contract (see `hierarchical.rs`) is that eviction
//! *policy* may be scheduling-dependent — recency stamps are racy
//! atomics, two racing threads may both materialise a block — but
//! block *contents* never are: a block is a pure function of
//! `(rtt_fn, shard)`, so an evict-then-rematerialise round trip is
//! invisible to `rtt`. The runtime tests sample that claim with real
//! threads; this suite enumerates every operation-level order of two
//! query threads over a one-block budget (maximum thrash: every
//! cross-shard switch evicts) with [`np_util::interleave`], checking
//! each completed schedule's observed latencies against the generator
//! — the value a cold, never-evicted world would return.
//!
//! Operation granularity is the right level here: a same-shard `rtt`
//! is one `get`-or-`insert` round against the cache, and the
//! accounting invariants it must preserve (`resident` mutex vs. slot
//! contents) are re-checked after every schedule via `cache_stats`.

use np_metric::{HierarchicalWorld, PeerId, WorldStore};
use np_util::interleave::{Interleaver, Op, OpStep};
use np_util::Micros;

/// The star fixture of `hierarchical.rs`'s unit tests: shard = id/4,
/// per-peer hub offset `1 + id%4` ms, hub-to-hub `10·|sa−sb|` ms.
/// Same-shard pairs are *exact* under the two-level model, so for
/// them the generator doubles as the cold-reference oracle.
fn star_rtt(a: PeerId, b: PeerId) -> Micros {
    if a == b {
        return Micros::ZERO;
    }
    let (sa, sb) = (a.0 / 4, b.0 / 4);
    let off = |p: PeerId| Micros::from_ms_u64(1 + (p.0 % 4) as u64);
    if sa == sb {
        off(a) + off(b)
    } else {
        off(a) + Micros::from_ms_u64(10 * (sa as i64 - sb as i64).unsigned_abs()) + off(b)
    }
}

fn star_hub_us(a: usize, b: usize) -> u64 {
    10_000 * (a as i64 - b as i64).unsigned_abs()
}

/// 3 shards × 4 peers with a one-block byte budget: each shard's
/// block is `4·4·4 = 64` bytes, so any query against a non-resident
/// shard evicts the current resident.
fn one_block_world() -> HierarchicalWorld {
    let shard_of: Vec<u32> = (0..12u32).map(|i| i / 4).collect();
    let offset: Vec<f32> = (0..12u32).map(|i| (1_000 + 1_000 * (i % 4)) as f32).collect();
    HierarchicalWorld::build_lazy(&shard_of, 1, offset, star_hub_us, 64, star_rtt)
}

struct St {
    world: HierarchicalWorld,
    /// Every observation: (a, b, rtt-as-returned).
    seen: Vec<(PeerId, PeerId, Micros)>,
}

fn query_op(a: u32, b: u32) -> Op<St> {
    Box::new(move |s: &mut St| {
        let (a, b) = (PeerId(a), PeerId(b));
        let d = s.world.rtt(a, b);
        s.seen.push((a, b, d));
        OpStep::Ran
    })
}

#[test]
fn every_schedule_is_cold_identical_under_eviction_thrash() {
    // Two threads, three same-shard queries each, shards arranged so
    // every consecutive pair of ops in *some* schedule crosses shards
    // (= evicts under the one-block budget). Thread 0 revisits shard 0
    // after its block was necessarily evicted — the warm-vs-rebuilt
    // read the identity is named for.
    let threads = || {
        vec![
            vec![query_op(0, 1), query_op(4, 5), query_op(0, 2)],
            vec![query_op(8, 9), query_op(0, 3), query_op(4, 6)],
        ]
    };
    let r = Interleaver::default()
        .explore(
            || St {
                world: one_block_world(),
                seen: Vec::new(),
            },
            threads(),
            |s, sched| {
                // Cold ≡ warm: every observation equals the generator
                // (exact for same-shard pairs), no matter where the
                // evictions landed in this schedule.
                for &(a, b, got) in &s.seen {
                    let want = star_rtt(a, b);
                    if got != want {
                        return Err(format!(
                            "rtt({a}, {b}) = {got} != cold {want} (schedule {sched:?})"
                        ));
                    }
                }
                // Accounting invariants survive the schedule: the
                // budget admits exactly one 64-byte block at rest, and
                // every same-shard query did one cache round.
                let stats = s.world.cache_stats();
                if stats.resident_blocks != 1 || stats.resident_bytes != 64 {
                    return Err(format!(
                        "accounting drifted: {stats:?} (schedule {sched:?})"
                    ));
                }
                if stats.hits + stats.misses != s.seen.len() as u64 {
                    return Err(format!(
                        "lookups ({} + {}) != queries ({}) (schedule {sched:?})",
                        stats.hits,
                        stats.misses,
                        s.seen.len()
                    ));
                }
                Ok(())
            },
        )
        .expect("cold≡warm identity must hold under every schedule");
    assert!(!r.truncated);
    assert_eq!(r.schedules, 20, "C(6,3) interleavings of 3+3 ops");
}

#[test]
fn hot_shard_pinned_by_recency_still_serves_exactly() {
    // A skewed workload: thread 0 hammers shard 0, thread 1 sweeps all
    // three shards. Recency keeps shard 0 mostly resident (policy —
    // unchecked, it is scheduling-dependent); the *values* must be
    // schedule-independent regardless.
    let threads = || {
        vec![
            vec![query_op(0, 1), query_op(1, 2), query_op(2, 3), query_op(0, 3)],
            vec![query_op(4, 5), query_op(8, 9), query_op(4, 7)],
        ]
    };
    let r = Interleaver::default()
        .explore(
            || St {
                world: one_block_world(),
                seen: Vec::new(),
            },
            threads(),
            |s, sched| {
                for &(a, b, got) in &s.seen {
                    let want = star_rtt(a, b);
                    if got != want {
                        return Err(format!(
                            "rtt({a}, {b}) = {got} != cold {want} (schedule {sched:?})"
                        ));
                    }
                }
                Ok(())
            },
        )
        .expect("values must be schedule-independent");
    assert!(!r.truncated);
    assert_eq!(r.schedules, 35, "C(7,3) interleavings of 4+3 ops");
}
