//! The per-node ring structure.
//!
//! Each Meridian node organises the peers it knows about into concentric
//! latency rings: ring 0 holds peers closer than α, ring `i ≥ 1` holds
//! peers with RTT in `[α·sⁱ⁻¹, α·sⁱ)`, and the outermost ring is
//! unbounded. Every ring keeps up to `k` *primary* members (used to
//! answer queries) and up to `l` *secondary* members (replacement
//! candidates); periodic management swaps secondaries in when doing so
//! increases the ring's hypervolume.

use crate::hypervolume;
use np_metric::PeerId;
use np_util::Micros;

/// Ring-structure parameters (paper §4 uses `k = 16`, Meridian's default
/// α = 1 ms, s = 2).
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Inner-ring radius.
    pub alpha: Micros,
    /// Ring growth factor.
    pub s: f64,
    /// Number of rings (the last ring is unbounded).
    pub n_rings: usize,
    /// Primary members per ring.
    pub k: usize,
    /// Secondary members per ring.
    pub l: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            alpha: Micros::from_ms_u64(1),
            s: 2.0,
            n_rings: 16,
            k: 16,
            l: 4,
        }
    }
}

impl RingConfig {
    /// Which ring a peer at RTT `d` belongs to.
    pub fn ring_of(&self, d: Micros) -> usize {
        if d < self.alpha {
            return 0;
        }
        // i = floor(log_s(d/alpha)) + 1, capped at the outermost ring.
        let ratio = d.as_us() as f64 / self.alpha.as_us() as f64;
        let i = ratio.ln() / self.s.ln();
        ((i.floor() as usize) + 1).min(self.n_rings - 1)
    }

    /// The half-open latency span `[lo, hi)` of ring `i` (`hi` is `None`
    /// for the unbounded outermost ring).
    pub fn span_of(&self, i: usize) -> (Micros, Option<Micros>) {
        assert!(i < self.n_rings);
        let lo = if i == 0 {
            Micros::ZERO
        } else {
            self.alpha.scale(self.s.powi(i as i32 - 1))
        };
        let hi = if i == self.n_rings - 1 {
            None
        } else if i == 0 {
            Some(self.alpha)
        } else {
            Some(self.alpha.scale(self.s.powi(i as i32)))
        };
        (lo, hi)
    }
}

/// A known peer with its measured RTT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    pub peer: PeerId,
    pub rtt: Micros,
}

/// One ring: primaries + secondaries.
#[derive(Debug, Clone, Default)]
struct Ring {
    primary: Vec<Member>,
    secondary: Vec<Member>,
}

/// The full ring set of one node.
#[derive(Debug, Clone)]
pub struct RingSet {
    cfg: RingConfig,
    owner: PeerId,
    rings: Vec<Ring>,
    /// Which ring (if any) currently holds each known peer — keeps
    /// inserts O(ring size) instead of O(total members), which matters
    /// when the omniscient builder offers every overlay member to every
    /// node.
    index: std::collections::HashMap<PeerId, u8>,
}

impl RingSet {
    /// Empty ring set for `owner`.
    pub fn new(owner: PeerId, cfg: RingConfig) -> RingSet {
        RingSet {
            cfg,
            owner,
            rings: vec![Ring::default(); cfg.n_rings],
            index: std::collections::HashMap::new(),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// The configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Observe a peer at RTT `rtt`. Duplicate observations refresh the
    /// stored RTT (relocating the member when the new RTT falls in a
    /// different ring). New peers become primary if the ring has space,
    /// otherwise secondary; when both are full, the oldest secondary is
    /// recycled.
    pub fn insert(&mut self, peer: PeerId, rtt: Micros) {
        if peer == self.owner {
            return;
        }
        let target = self.cfg.ring_of(rtt);
        if let Some(&old) = self.index.get(&peer) {
            let ring = &mut self.rings[old as usize];
            if old as usize == target {
                // Refresh in place.
                let m = ring
                    .primary
                    .iter_mut()
                    .chain(ring.secondary.iter_mut())
                    .find(|m| m.peer == peer)
                    .expect("index entry must exist in its ring");
                m.rtt = rtt;
                return;
            }
            // Relocate: drop from the old ring, fall through to add.
            if let Some(pos) = ring.primary.iter().position(|m| m.peer == peer) {
                ring.primary.remove(pos);
            } else if let Some(pos) = ring.secondary.iter().position(|m| m.peer == peer) {
                ring.secondary.remove(pos);
            }
            self.index.remove(&peer);
        }
        let m = Member { peer, rtt };
        let ring = &mut self.rings[target];
        if ring.primary.len() < self.cfg.k {
            ring.primary.push(m);
        } else if ring.secondary.len() < self.cfg.l {
            ring.secondary.push(m);
        } else {
            // Recycle the oldest secondary (front of the vec).
            let evicted = ring.secondary.remove(0);
            self.index.remove(&evicted.peer);
            ring.secondary.push(m);
        }
        self.index.insert(peer, target as u8);
    }

    /// Forget a peer entirely (graceful departure). Returns whether it
    /// was known.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let Some(ring_idx) = self.index.remove(&peer) else {
            return false;
        };
        let ring = &mut self.rings[ring_idx as usize];
        if let Some(pos) = ring.primary.iter().position(|m| m.peer == peer) {
            ring.primary.remove(pos);
            // Promote a secondary to keep the ring populated.
            if let Some(promoted) = ring.secondary.pop() {
                ring.primary.push(promoted);
            }
        } else if let Some(pos) = ring.secondary.iter().position(|m| m.peer == peer) {
            ring.secondary.remove(pos);
        }
        true
    }

    /// All primary members across rings.
    pub fn primaries(&self) -> impl Iterator<Item = Member> + '_ {
        self.rings.iter().flat_map(|r| r.primary.iter().copied())
    }

    /// All secondary members across rings (replacement candidates —
    /// part of the structure's state, so repair-equivalence checks
    /// compare them too).
    pub fn secondaries(&self) -> impl Iterator<Item = Member> + '_ {
        self.rings.iter().flat_map(|r| r.secondary.iter().copied())
    }

    /// Forget every member of ring `r` (primaries and secondaries).
    /// The incremental repair path clears a dirty ring before
    /// replaying its survivor arrival sequence into it.
    pub(crate) fn clear_ring(&mut self, r: usize) {
        let ring = &mut self.rings[r];
        let peers: Vec<PeerId> = ring
            .primary
            .iter()
            .chain(ring.secondary.iter())
            .map(|m| m.peer)
            .collect();
        ring.primary.clear();
        ring.secondary.clear();
        for p in peers {
            self.index.remove(&p);
        }
    }

    /// Primary members with RTT within `[lo, hi]` — the β-annulus query.
    pub fn primaries_in(&self, lo: Micros, hi: Micros) -> Vec<Member> {
        // Only rings overlapping [lo, hi] need scanning.
        let first = self.cfg.ring_of(lo);
        let last = self.cfg.ring_of(hi);
        let mut out = Vec::new();
        for ring in &self.rings[first..=last] {
            for m in &ring.primary {
                if m.rtt >= lo && m.rtt <= hi {
                    out.push(*m);
                }
            }
        }
        out
    }

    /// Number of primary members.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.primary.len()).sum()
    }

    /// True iff no members are known.
    pub fn is_empty(&self) -> bool {
        self.rings
            .iter()
            .all(|r| r.primary.is_empty() && r.secondary.is_empty())
    }

    /// Run ring-membership management on every ring: choose the `k` of
    /// `primary ∪ secondary` maximising hypervolume (`dist` supplies
    /// pairwise RTTs between members, e.g. from the latency matrix), with
    /// the rest demoted to secondaries.
    pub fn manage(&mut self, mut dist: impl FnMut(PeerId, PeerId) -> Micros) {
        for r in 0..self.rings.len() {
            self.manage_ring(r, &mut dist);
        }
    }

    /// [`RingSet::manage`] restricted to ring `r`. Management is
    /// per-ring independent (the selection reads only the ring's own
    /// candidates), which is what lets incremental repair re-manage
    /// only the rings it replayed and still match a full rebuild
    /// bit for bit.
    pub(crate) fn manage_ring(&mut self, r: usize, mut dist: impl FnMut(PeerId, PeerId) -> Micros) {
        let ring = &self.rings[r];
        let total = ring.primary.len() + ring.secondary.len();
        if total <= self.cfg.k || ring.secondary.is_empty() {
            return;
        }
        let candidates: Vec<Member> = ring
            .primary
            .iter()
            .chain(ring.secondary.iter())
            .copied()
            .collect();
        let selected = hypervolume::select_max_volume(total, self.cfg.k, |i, j| {
            dist(candidates[i].peer, candidates[j].peer).as_ms()
        });
        let mut new_primary = Vec::with_capacity(self.cfg.k);
        let mut new_secondary = Vec::with_capacity(self.cfg.l);
        let mut dropped = Vec::new();
        for (idx, m) in candidates.into_iter().enumerate() {
            if selected.binary_search(&idx).is_ok() {
                new_primary.push(m);
            } else if new_secondary.len() < self.cfg.l {
                new_secondary.push(m);
            } else {
                // Dropped entirely: forget it.
                dropped.push(m.peer);
            }
        }
        let ring = &mut self.rings[r];
        ring.primary = new_primary;
        ring.secondary = new_secondary;
        for p in dropped {
            self.index.remove(&p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RingConfig {
        RingConfig::default()
    }

    #[test]
    fn ring_of_matches_spans() {
        let c = cfg();
        assert_eq!(c.ring_of(Micros::from_us(100)), 0);
        assert_eq!(c.ring_of(Micros::from_us(999)), 0);
        assert_eq!(c.ring_of(Micros::from_ms_u64(1)), 1);
        assert_eq!(c.ring_of(Micros::from_ms(1.999)), 1);
        assert_eq!(c.ring_of(Micros::from_ms_u64(2)), 2);
        assert_eq!(c.ring_of(Micros::from_ms_u64(5)), 3); // [4,8)
        assert_eq!(c.ring_of(Micros::from_secs(100.0)), c.n_rings - 1);
    }

    #[test]
    fn spans_tile_the_axis() {
        let c = cfg();
        for i in 0..c.n_rings - 1 {
            let (lo, hi) = c.span_of(i);
            let hi = hi.expect("bounded ring");
            // Every latency in [lo, hi) maps back to ring i.
            assert_eq!(c.ring_of(lo), i, "lower edge of ring {i}");
            assert_eq!(c.ring_of(Micros(hi.as_us() - 1)), i, "upper edge of ring {i}");
            let (next_lo, _) = c.span_of(i + 1);
            assert_eq!(hi, next_lo, "rings must tile");
        }
        assert_eq!(c.span_of(c.n_rings - 1).1, None);
    }

    #[test]
    fn insert_respects_capacity_and_promotes_refreshes() {
        let mut rs = RingSet::new(PeerId(0), RingConfig { k: 2, l: 1, ..cfg() });
        // Four peers, all in ring 2 ([2,4) ms).
        for (i, ms) in [(1u32, 2.1), (2, 2.5), (3, 3.0), (4, 3.5)] {
            rs.insert(PeerId(i), Micros::from_ms(ms));
        }
        assert_eq!(rs.len(), 2, "primaries capped at k");
        // Refresh an existing member: no growth.
        rs.insert(PeerId(1), Micros::from_ms(2.2));
        assert_eq!(rs.len(), 2);
        // Self-inserts are ignored.
        rs.insert(PeerId(0), Micros::from_ms(2.0));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn primaries_in_filters_annulus() {
        let mut rs = RingSet::new(PeerId(0), cfg());
        for (i, ms) in [(1u32, 0.5), (2, 3.0), (3, 6.0), (4, 12.0), (5, 80.0)] {
            rs.insert(PeerId(i), Micros::from_ms(ms));
        }
        // Annulus [2, 10] ms: peers 2 and 3.
        let members = rs.primaries_in(Micros::from_ms(2.0), Micros::from_ms(10.0));
        let mut ids: Vec<u32> = members.iter().map(|m| m.peer.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn manage_promotes_volume_improving_secondary() {
        // k=3: three clumped primaries + one far secondary. Management
        // should swap the far secondary in (bigger simplex).
        let mut rs = RingSet::new(PeerId(0), RingConfig { k: 3, l: 2, ..cfg() });
        // Ring [4, 8): all four inserted there.
        rs.insert(PeerId(1), Micros::from_ms(4.1));
        rs.insert(PeerId(2), Micros::from_ms(4.2));
        rs.insert(PeerId(3), Micros::from_ms(4.3));
        rs.insert(PeerId(4), Micros::from_ms(7.9)); // secondary
        // Pairwise metric: 1,2,3 are mutually 0.1 ms apart; 4 is 50 ms
        // from everyone.
        let dist = |a: PeerId, b: PeerId| {
            if a == b {
                Micros::ZERO
            } else if a.0 <= 3 && b.0 <= 3 {
                Micros::from_us(100)
            } else {
                Micros::from_ms_u64(50)
            }
        };
        rs.manage(dist);
        let ids: Vec<u32> = rs.primaries().map(|m| m.peer.0).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.contains(&4), "far peer must be promoted, got {ids:?}");
    }

    #[test]
    fn clear_ring_forgets_members_and_frees_the_index() {
        let mut rs = RingSet::new(PeerId(0), RingConfig { k: 2, l: 1, ..cfg() });
        for (i, ms) in [(1u32, 2.1), (2, 2.5), (3, 3.0), (4, 0.5)] {
            rs.insert(PeerId(i), Micros::from_ms(ms));
        }
        let r = cfg().ring_of(Micros::from_ms(2.1));
        rs.clear_ring(r);
        let ids: Vec<u32> = rs.primaries().chain(rs.secondaries()).map(|m| m.peer.0).collect();
        assert_eq!(ids, vec![4], "only the untouched ring survives");
        // Cleared peers can be re-inserted from scratch.
        rs.insert(PeerId(1), Micros::from_ms(2.1));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn manage_equals_per_ring_management() {
        let dist = |a: PeerId, b: PeerId| {
            Micros::from_us(100 + 997 * u64::from(a.0.min(b.0)) + 131 * u64::from(a.0.max(b.0)))
        };
        let build = || {
            let mut rs = RingSet::new(PeerId(0), RingConfig { k: 3, l: 2, ..cfg() });
            for i in 1..40u32 {
                rs.insert(PeerId(i), Micros::from_us(300 * u64::from(i)));
            }
            rs
        };
        let mut whole = build();
        whole.manage(dist);
        let mut by_ring = build();
        for r in 0..cfg().n_rings {
            by_ring.manage_ring(r, dist);
        }
        let collect = |rs: &RingSet| -> (Vec<Member>, Vec<Member>) {
            (rs.primaries().collect(), rs.secondaries().collect())
        };
        assert_eq!(collect(&whole), collect(&by_ring));
    }

    #[test]
    fn manage_noop_when_underfull() {
        let mut rs = RingSet::new(PeerId(0), cfg());
        rs.insert(PeerId(1), Micros::from_ms(3.0));
        let before: Vec<Member> = rs.primaries().collect();
        rs.manage(|_, _| Micros::from_ms_u64(1));
        let after: Vec<Member> = rs.primaries().collect();
        assert_eq!(before, after);
    }

    proptest::proptest! {
        /// ring_of is monotone in latency and always a valid index.
        #[test]
        fn prop_ring_of_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let c = cfg();
            let (lo, hi) = (a.min(b), a.max(b));
            let (rl, rh) = (c.ring_of(Micros(lo)), c.ring_of(Micros(hi)));
            proptest::prop_assert!(rl <= rh);
            proptest::prop_assert!(rh < c.n_rings);
        }

        /// Capacity invariants hold under arbitrary insert sequences.
        #[test]
        fn prop_capacity(
            inserts in proptest::collection::vec((1u32..200, 1u64..1_000_000), 0..300),
        ) {
            let c = RingConfig { k: 4, l: 2, ..cfg() };
            let mut rs = RingSet::new(PeerId(0), c);
            for &(p, rtt) in &inserts {
                rs.insert(PeerId(p), Micros(rtt));
            }
            for i in 0..c.n_rings {
                let ring_members = rs.primaries_in(c.span_of(i).0,
                    c.span_of(i).1.map(|h| Micros(h.as_us()-1)).unwrap_or(Micros::INFINITY));
                proptest::prop_assert!(ring_members.len() <= c.k);
            }
            // No duplicate peers across the whole structure.
            let mut ids: Vec<u32> = rs.primaries().map(|m| m.peer.0).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), before);
        }
    }
}
