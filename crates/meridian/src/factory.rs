//! [`AlgoFactory`] for Meridian overlays.
//!
//! Registers the paper's §4 Meridian (omniscient simulator fill,
//! β = 0.5) and the deployable gossip warm-up under distinct names;
//! ablation binaries register further variants via
//! [`MeridianFactory::custom`].

use crate::overlay::{BuildMode, Overlay};
use crate::MeridianConfig;
use np_core::churn::{DynamicAlgo, EpochMembership, RepairCost, EVT_TAG};
use np_core::experiment::{AlgoContext, AlgoFactory, BuildCache};
use np_metric::{NearestPeerAlgo, PeerId, WorldStore};
use np_util::parallel::item_seed;

/// Builds a Meridian [`Overlay`] with a fixed configuration.
pub struct MeridianFactory {
    name: String,
    cfg: MeridianConfig,
    mode: BuildMode,
}

impl MeridianFactory {
    /// The paper's configuration with the simulator's omniscient ring
    /// fill — registry name `"meridian"`.
    pub fn omniscient() -> MeridianFactory {
        MeridianFactory::custom("meridian", MeridianConfig::default(), BuildMode::Omniscient)
    }

    /// The decentralised gossip warm-up — registry name
    /// `"meridian-gossip"`.
    pub fn gossip(rounds: usize, fanout: usize) -> MeridianFactory {
        MeridianFactory::custom(
            "meridian-gossip",
            MeridianConfig::default(),
            BuildMode::Gossip { rounds, fanout },
        )
    }

    /// Any configuration under any registry name (ablations).
    pub fn custom(
        name: impl Into<String>,
        cfg: MeridianConfig,
        mode: BuildMode,
    ) -> MeridianFactory {
        MeridianFactory {
            name: name.into(),
            cfg,
            mode,
        }
    }
}

impl AlgoFactory for MeridianFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> String {
        let mode = match self.mode {
            BuildMode::Omniscient => "omniscient fill".to_string(),
            BuildMode::Gossip { rounds, fanout } => {
                format!("gossip warm-up ({rounds} rounds, fanout {fanout})")
            }
        };
        format!(
            "Meridian beta-routing (beta={}, {} manage rounds, {mode})",
            self.cfg.beta, self.cfg.manage_rounds
        )
    }

    fn build<'a>(&self, ctx: &AlgoContext<'a>) -> Box<dyn NearestPeerAlgo + 'a> {
        // The ring fill is a pure function of (world, members, cfg,
        // mode, seed); the context's build cache already scopes world
        // and seed, so identical configurations registered under
        // several names (the hybrid coverage sweep wraps this factory
        // six times) share one fill and clone the rings out.
        //
        // When the backend exposes shard structure (the block-compressed
        // sharded store) the omniscient fill runs through the
        // shard-local fast path — identical rings, a fraction of the
        // work. The fill flavour is part of the cache key so the two
        // paths never alias a slot, even though their contents agree.
        let shard_local =
            self.mode == BuildMode::Omniscient && ctx.store.shard_view().is_some();
        let key = format!(
            "meridian-rings|{:?}|{:?}|fill={}",
            self.cfg,
            self.mode,
            if shard_local { "shard-local" } else { "direct" }
        );
        let parts = ctx.shared.get_or_build(&key, || {
            let overlay = if shard_local {
                Overlay::build_shard_local_threads(
                    ctx.store,
                    ctx.overlay.to_vec(),
                    self.cfg,
                    ctx.seed,
                    ctx.threads,
                )
            } else {
                Overlay::build_threads(
                    ctx.store,
                    ctx.overlay.to_vec(),
                    self.cfg,
                    self.mode,
                    ctx.seed,
                    ctx.threads,
                )
            };
            overlay.into_parts()
        });
        let (cfg, members, rings, origin) = (*parts).clone();
        Box::new(Overlay::from_parts(ctx.store, cfg, members, rings, origin))
    }

    fn dynamic_override<'a>(
        &'a self,
        ctx: &AlgoContext<'a>,
    ) -> Option<Box<dyn DynamicAlgo<'a> + 'a>> {
        // Gossip fills have no replayable offer streams, so they take
        // the universal rebuild-each-epoch default.
        if self.mode != BuildMode::Omniscient {
            return None;
        }
        Some(Box::new(MeridianDynamic {
            cfg: self.cfg,
            store: ctx.store,
            seed: ctx.seed,
            threads: ctx.threads,
            overlay: None,
            epoch: 0,
        }))
    }
}

/// Meridian's churn-aware wrapper: incremental overlay repair instead
/// of rebuild-per-epoch.
///
/// Epoch policy:
/// * **epoch 0** — full omniscient fill over the live set at the run
///   seed (shard-local fast path when the backend offers it), so a
///   null churn schedule is bit-identical to the static pipeline;
/// * **join epochs** — full rebuild at `item_seed(seed, EVT_TAG,
///   epoch)`: a joiner changes every node's offer stream, so there is
///   nothing incremental to salvage (and the paper-faithful simulator
///   fill is the reference structure);
/// * **leave-only epochs** — [`Overlay::repair_after_leaves_threads`]:
///   replay only the rings that lost a member, bit-identical to a
///   full rebuild over the survivors (the tentpole contract, pinned
///   in `tests/overlay_repair.rs`);
/// * **drift-only epochs** — no structural work: rings keep their
///   stale fill-time measurements, exactly like a deployed overlay
///   whose members do not refill rings when latencies wander.
struct MeridianDynamic<'a> {
    cfg: MeridianConfig,
    store: &'a dyn WorldStore,
    seed: u64,
    threads: usize,
    overlay: Option<Overlay<'a, dyn WorldStore + 'a>>,
    epoch: u64,
}

impl<'a> MeridianDynamic<'a> {
    fn full_build(&self, seed: u64, live: &[PeerId]) -> Overlay<'a, dyn WorldStore + 'a> {
        if self.store.shard_view().is_some() {
            Overlay::build_shard_local_threads(
                self.store,
                live.to_vec(),
                self.cfg,
                seed,
                self.threads,
            )
        } else {
            Overlay::build_threads(
                self.store,
                live.to_vec(),
                self.cfg,
                BuildMode::Omniscient,
                seed,
                self.threads,
            )
        }
    }
}

impl<'a> DynamicAlgo<'a> for MeridianDynamic<'a> {
    fn advance(&mut self, ep: &'a EpochMembership, _fresh: &'a BuildCache) -> RepairCost {
        let cost = if self.epoch == 0 {
            self.overlay = Some(self.full_build(self.seed, &ep.live));
            RepairCost {
                full_rebuilds: 1,
                ..RepairCost::default()
            }
        } else if !ep.joined.is_empty() {
            let seed = item_seed(self.seed, EVT_TAG, self.epoch);
            self.overlay = Some(self.full_build(seed, &ep.live));
            RepairCost {
                full_rebuilds: 1,
                ..RepairCost::default()
            }
        } else if !ep.departed.is_empty() {
            let stats = self
                .overlay
                .as_mut()
                .expect("advance() runs epoch 0 first")
                .repair_after_leaves_threads(&ep.departed, self.threads);
            RepairCost {
                full_rebuilds: 0,
                rings_replayed: stats.rings_replayed,
                ring_inserts: stats.ring_inserts,
                fallback_leaves: stats.fallback_leaves,
            }
        } else {
            RepairCost::default() // drift-only: rings stay as measured
        };
        self.epoch += 1;
        cost
    }

    fn algo(&self) -> &(dyn NearestPeerAlgo + '_) {
        self.overlay
            .as_ref()
            .expect("advance() must run before algo()")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::line_world;
    use np_metric::{PeerId, Target, WorldStore};
    use np_topology::{ClusterWorld, ClusterWorldSpec};
    use np_util::rng::rng_from;
    use np_util::Micros;

    #[test]
    fn factory_builds_a_working_overlay() {
        let spec = ClusterWorldSpec {
            clusters: 3,
            en_per_cluster: 6,
            peers_per_en: 2,
            delta: 0.2,
            mean_hub_ms: (4.0, 6.0),
            intra_en: Micros::from_us(100),
            hub_pool: 4,
        };
        let world = ClusterWorld::generate(spec, 3);
        let matrix = world.to_matrix();
        let overlay: Vec<PeerId> = world.peers().skip(2).collect();
        let shared = np_core::experiment::BuildCache::new();
        let ctx = AlgoContext {
            store: &matrix,
            world: &world,
            overlay: &overlay,
            seed: 9,
            threads: 2,
            shared: &shared,
        };
        let factory = MeridianFactory::omniscient();
        assert_eq!(factory.name(), "meridian");
        assert!(factory.description().contains("beta=0.5"));
        let algo = factory.build(&ctx);
        assert_eq!(algo.name(), "meridian");
        let t = Target::new(PeerId(0), &matrix);
        let out = algo.find_nearest(&t, &mut rng_from(1));
        assert!(out.probes > 0);
        assert!(overlay.contains(&out.found));
    }

    #[test]
    fn cached_rebuild_is_indistinguishable() {
        // Two builds from one context share the cached ring fill; a
        // build from a fresh context refills from scratch. All three
        // must answer identically — a cache hit is not allowed to be
        // observable.
        let m = line_world(48);
        let members: Vec<PeerId> = (0..48).map(PeerId).collect();
        let world = ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 1,
                en_per_cluster: 1,
                peers_per_en: 2,
                delta: 0.2,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 2,
            },
            1,
        );
        let ctx_for = |shared| AlgoContext {
            store: &m,
            world: &world,
            overlay: &members,
            seed: 33,
            threads: 2,
            shared,
        };
        let shared = np_core::experiment::BuildCache::new();
        let fresh = np_core::experiment::BuildCache::new();
        let factory = MeridianFactory::omniscient();
        let first = factory.build(&ctx_for(&shared));
        let second = factory.build(&ctx_for(&shared)); // cache hit
        let scratch = factory.build(&ctx_for(&fresh)); // full refill
        for t in [3u32, 17, 40] {
            let outs: Vec<_> = [&first, &second, &scratch]
                .iter()
                .map(|algo| {
                    let target = Target::new(PeerId(t), &m);
                    algo.find_nearest(&target, &mut rng_from(9))
                })
                .collect();
            assert_eq!(outs[0], outs[1], "cache hit diverged");
            assert_eq!(outs[0], outs[2], "cache path diverged from scratch build");
        }
    }

    #[test]
    fn sharded_store_auto_picks_shard_local_and_matches_dense() {
        // On a §4 world the hub summary is exact, so the factory's
        // shard-local fast path (sharded store) must answer exactly
        // like the omniscient fill over the dense store.
        let spec = ClusterWorldSpec {
            clusters: 4,
            en_per_cluster: 8,
            peers_per_en: 2,
            delta: 0.2,
            mean_hub_ms: (4.0, 6.0),
            intra_en: Micros::from_us(100),
            hub_pool: 5,
        };
        let world = ClusterWorld::generate(spec, 11);
        let matrix = world.to_matrix();
        let sharded = world.to_sharded_threads(2);
        let overlay: Vec<PeerId> = world.peers().skip(4).collect();
        let factory = MeridianFactory::omniscient();
        let build_on = |store: &dyn WorldStore| {
            let shared = np_core::experiment::BuildCache::new();
            let ctx = AlgoContext {
                store,
                world: &world,
                overlay: &overlay,
                seed: 13,
                threads: 2,
                shared: &shared,
            };
            let algo = factory.build(&ctx);
            (0..4u32)
                .map(|t| {
                    let target = Target::new(PeerId(t), store);
                    algo.find_nearest(&target, &mut rng_from(t as u64 + 1))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            build_on(&matrix),
            build_on(&sharded),
            "shard-local fast path diverged from the dense omniscient fill"
        );
    }

    #[test]
    fn dynamic_meridian_null_churn_matches_the_static_pipeline() {
        use np_core::churn::{dynamic_algo, run_dynamic_threads, ChurnConfig, ChurnSchedule};
        use np_core::{run_queries_threads, ClusterScenario};
        let spec = ClusterWorldSpec {
            clusters: 4,
            en_per_cluster: 8,
            peers_per_en: 2,
            delta: 0.2,
            mean_hub_ms: (4.0, 6.0),
            intra_en: Micros::from_us(100),
            hub_pool: 5,
        };
        let s = ClusterScenario::build(spec, 8, 3);
        let cfg = ChurnConfig::null(60.0);
        let sched = ChurnSchedule::generate(&cfg, &s.overlay, s.world.len(), 50, 7);
        let caches = vec![BuildCache::new()];
        let shared = BuildCache::new();
        let ctx = AlgoContext {
            store: &s.matrix,
            world: &s.world,
            overlay: &s.overlay,
            seed: 7,
            threads: 2,
            shared: &shared,
        };
        let factory = MeridianFactory::omniscient();
        let mut dynamic = dynamic_algo(&factory, &ctx);
        let (dyn_metrics, stats) =
            run_dynamic_threads(dynamic.as_mut(), &s, &sched, &caches, &cfg, 50, 7, 2);
        let static_algo = factory.build(&ctx);
        let static_metrics = run_queries_threads(static_algo.as_ref(), &s, 50, 7, 2);
        assert_eq!(dyn_metrics, static_metrics, "null churn must be invisible");
        assert_eq!(stats.repair.full_rebuilds, 1);
        assert_eq!(stats.repair.rings_replayed, 0);
    }

    #[test]
    fn dynamic_meridian_repairs_under_churn_and_is_thread_invariant() {
        use np_core::churn::{dynamic_algo, run_dynamic_threads, ChurnConfig, ChurnSchedule};
        use np_core::ClusterScenario;
        let spec = ClusterWorldSpec {
            clusters: 4,
            en_per_cluster: 8,
            peers_per_en: 2,
            delta: 0.2,
            mean_hub_ms: (4.0, 6.0),
            intra_en: Micros::from_us(100),
            hub_pool: 5,
        };
        let s = ClusterScenario::build(spec, 8, 5);
        let cfg = ChurnConfig {
            events_per_min: 20.0,
            duration_s: 60.0,
            drift_max_us: 2_000,
            offline_frac: 0.1,
            loss: 0.05,
            retries: 3,
        };
        let sched = ChurnSchedule::generate(&cfg, &s.overlay, s.world.len(), 60, 9);
        assert!(sched.leaves > 0, "schedule must exercise the repair path");
        let factory = MeridianFactory::omniscient();
        let run_at = |threads: usize| {
            let caches: Vec<BuildCache> =
                (0..sched.epochs.len()).map(|_| BuildCache::new()).collect();
            let shared = BuildCache::new();
            let ctx = AlgoContext {
                store: &s.matrix,
                world: &s.world,
                overlay: &s.overlay,
                seed: 9,
                threads,
                shared: &shared,
            };
            let mut dynamic = dynamic_algo(&factory, &ctx);
            run_dynamic_threads(dynamic.as_mut(), &s, &sched, &caches, &cfg, 60, 9, threads)
        };
        let (metrics, stats) = run_at(1);
        // Leave-only epochs went through incremental repair, not rebuild.
        assert!(stats.repair.rings_replayed > 0, "{stats:?}");
        assert!(
            stats.repair.full_rebuilds <= 1 + sched.joins,
            "only epoch 0 and join epochs may rebuild: {stats:?}"
        );
        assert_eq!(stats.repair.fallback_leaves, 0);
        assert_eq!(metrics.queries, 60);
        assert!(metrics.p_correct_closest > 0.0);
        for threads in [2, 4] {
            assert_eq!(
                (metrics, stats),
                run_at(threads),
                "dynamic meridian diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn gossip_mode_has_no_dynamic_override() {
        let m = line_world(24);
        let members: Vec<PeerId> = (0..24).map(PeerId).collect();
        let world = ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 1,
                en_per_cluster: 1,
                peers_per_en: 2,
                delta: 0.2,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 2,
            },
            1,
        );
        let shared = BuildCache::new();
        let ctx = AlgoContext {
            store: &m,
            world: &world,
            overlay: &members,
            seed: 3,
            threads: 1,
            shared: &shared,
        };
        assert!(MeridianFactory::gossip(4, 4).dynamic_override(&ctx).is_none());
        assert!(MeridianFactory::omniscient().dynamic_override(&ctx).is_some());
    }

    #[test]
    fn factory_build_matches_direct_build() {
        // The factory is sugar, not semantics: same seed ⇒ the same
        // rings and answers as calling Overlay::build directly.
        let m = line_world(32);
        let members: Vec<PeerId> = (0..32).map(PeerId).collect();
        let direct = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            21,
        );
        let fake_world = ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 1,
                en_per_cluster: 1,
                peers_per_en: 2,
                delta: 0.2,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 2,
            },
            1,
        );
        let store: &dyn WorldStore = &m;
        let shared = np_core::experiment::BuildCache::new();
        let ctx = AlgoContext {
            store,
            world: &fake_world, // meridian ignores topology metadata
            overlay: &members,
            seed: 21,
            threads: 4,
            shared: &shared,
        };
        let via_factory = MeridianFactory::omniscient().build(&ctx);
        let t1 = Target::new(PeerId(5), &m);
        let t2 = Target::new(PeerId(5), &m);
        let a = direct.find_nearest(&t1, &mut rng_from(3));
        let b = via_factory.find_nearest(&t2, &mut rng_from(3));
        assert_eq!(a, b);
    }
}
