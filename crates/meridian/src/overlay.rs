//! Overlay construction and the β-routing closest-node query.
//!
//! Paper §4 setup: "~2400 randomly picked peers build a Meridian overlay
//! [...] 5000 Meridian closest-neighbor queries are launched to find the
//! closest peer to randomly chosen target nodes", with β = 0.5 and 16
//! nodes per ring. [`Overlay`] implements both the construction (the
//! authors' simulator fills rings from the latency matrix; a gossip
//! warm-up mode is provided as the decentralised alternative) and the
//! query, which is the paper's §2.3 description of Meridian:
//!
//! > "The node currently processing the query measures its latency to the
//! > target, and asks the nodes in its rings that it knows are at about
//! > the same latency to itself to measure their latencies to the target.
//! > The query is then forwarded to the node with the minimum distance to
//! > the target. The query terminates when the current node can find no
//! > closer node to the target than itself."
//!
//! "At about the same latency" is the annulus `[(1-β)d, (1+β)d]`;
//! "forwarded" requires the improvement `d' < β·d` (Meridian's
//! acceptance threshold), which guarantees geometric progress and gives
//! the paper's trade-off knob β.

use crate::rings::{RingConfig, RingSet};
use np_metric::{LatencyMatrix, NearestPeerAlgo, PeerId, QueryOutcome, Target, WorldStore};
use np_util::parallel::{item_seed, par_map, resolve_threads};
use np_util::rng::{rng_for, rng_from};
use np_util::Micros;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::{HashMap, HashSet};

/// Seed tag for the per-node RNG streams of the omniscient ring fill.
/// Each node's offer order is drawn from `item_seed(seed, FILL_TAG, i)`
/// — a pure function of `(seed, member index)` — which is what lets the
/// fill run on any number of workers and still produce bit-identical
/// rings (enforced by `tests/parallel_determinism.rs`).
const FILL_TAG: u64 = 0x4D46_494C; // "MFIL"

/// Ring-boundary table for a [`RingConfig`]: `bounds[i]` is the
/// smallest whole-µs latency whose ring index exceeds `i`, found by
/// binary search with [`RingConfig::ring_of`] itself as the oracle
/// (`ring_of` is monotone in latency — property-tested in `rings.rs`).
/// Classification then becomes a partition-point search over at most
/// `n_rings - 1` `u64`s — pointwise equal to `ring_of`, with no
/// logarithm per candidate. The shard-local fill's hot loop
/// `debug_assert`s that equality on every classified pair.
fn ring_bounds(cfg: &RingConfig) -> Vec<u64> {
    // Far beyond any generated latency; ring_of saturates at the
    // outermost ring long before this.
    const HI: u64 = 1 << 45;
    (0..cfg.n_rings.saturating_sub(1))
        .map(|i| {
            debug_assert!(cfg.ring_of(Micros(HI)) > i);
            let (mut lo, mut hi) = (0u64, HI);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cfg.ring_of(Micros(mid)) > i {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        })
        .collect()
}

/// Meridian parameters (§4 of the paper: β = 0.5, 16 per ring).
#[derive(Debug, Clone, Copy)]
pub struct MeridianConfig {
    pub rings: RingConfig,
    /// Acceptance threshold β ∈ (0, 1): forward only when the best probe
    /// improves on `β·d`.
    pub beta: f64,
    /// Ring-management passes after construction.
    pub manage_rounds: usize,
    /// Hop budget (loop guard; Meridian converges long before this).
    pub max_hops: u32,
}

impl Default for MeridianConfig {
    fn default() -> Self {
        MeridianConfig {
            rings: RingConfig::default(),
            beta: 0.5,
            manage_rounds: 2,
            max_hops: 64,
        }
    }
}

/// Provenance of an omniscient ring fill, recorded so churn repair can
/// replay exactly the offer streams that built the rings.
///
/// The omniscient fill (dense or shard-local) offers every roster
/// member to every node once, in an order drawn from
/// `item_seed(seed, FILL_TAG, roster index)`. Ring state is therefore
/// a pure function of `(seed, roster, removed-so-far)` — and after a
/// departure, only the rings whose arrival subsequence contained the
/// departed peer can change. [`Overlay::repair_after_leaves_threads`]
/// exploits that: it replays *only the dirty rings* from these
/// streams, with a bit-identical-to-full-rebuild contract (see
/// [`Overlay::rebuild_surviving`] and `tests/overlay_repair.rs`).
///
/// `removed` accumulates every peer repaired away since the fill, so
/// repeated repairs keep replaying over the correct survivor set.
/// Gossip builds and post-hoc `join`/`leave` mutations have no replay
/// stream; they carry no origin and repair falls back to plain
/// [`Overlay::leave`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillOrigin {
    /// Seed of the omniscient fill that produced the rings.
    pub seed: u64,
    /// Full membership at fill time, in fill order (index `i` owns the
    /// offer stream `item_seed(seed, FILL_TAG, i)`).
    pub roster: Vec<PeerId>,
    /// Peers repaired out since the fill (cumulative, in departure order).
    pub removed: Vec<PeerId>,
}

/// Cost accounting for one [`Overlay::repair_after_leaves_threads`]
/// call: how much ring state had to be touched, versus the full
/// rebuild the repair replaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Rings cleared and replayed from the fill's offer streams.
    pub rings_replayed: u64,
    /// Ring insertions performed during those replays.
    pub ring_inserts: u64,
    /// Departures handled by plain [`Overlay::leave`] because no fill
    /// origin was recorded (gossip builds, post-join overlays).
    pub fallback_leaves: u64,
}

/// How ring members are discovered at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildMode {
    /// Every node is offered every other member in random order (what the
    /// Meridian simulator does); ring capacities + management do the
    /// selection.
    Omniscient,
    /// Gossip warm-up: per round, each node contacts `fanout` random
    /// members and they exchange ring contents.
    Gossip { rounds: usize, fanout: usize },
}

/// A built Meridian overlay over a latency backend.
///
/// Generic over [`WorldStore`] (defaulting to the dense matrix): the
/// omniscient fill and gossip warm-up read inter-member RTTs through
/// the trait, so overlays build identically over a [`LatencyMatrix`]
/// or a sharded world.
pub struct Overlay<'m, W: WorldStore + ?Sized = LatencyMatrix> {
    cfg: MeridianConfig,
    world: &'m W,
    members: Vec<PeerId>,
    rings: HashMap<PeerId, RingSet>,
    origin: Option<FillOrigin>,
}

impl<'m, W: WorldStore + ?Sized> Overlay<'m, W> {
    /// Build an overlay over `members` (must be non-empty), on the
    /// ambient thread count (`$NP_THREADS`, else all cores). Results
    /// are identical at any worker count — see [`Overlay::build_threads`].
    pub fn build(
        world: &'m W,
        members: Vec<PeerId>,
        cfg: MeridianConfig,
        mode: BuildMode,
        seed: u64,
    ) -> Overlay<'m, W> {
        Overlay::build_threads(world, members, cfg, mode, seed, resolve_threads(None))
    }

    /// [`Overlay::build`] with an explicit worker count.
    ///
    /// In [`BuildMode::Omniscient`] each node's ring membership is a
    /// pure function of the matrix and its own offer-order RNG stream
    /// (`item_seed(seed, FILL_TAG, index)`), so per-node fill + ring
    /// management run in parallel via [`par_map`] and the rings come
    /// out bit-identical at any `threads`, including 1. The gossip
    /// warm-up is inherently sequential (nodes exchange evolving ring
    /// contents) and stays serial regardless of `threads`.
    pub fn build_threads(
        world: &'m W,
        members: Vec<PeerId>,
        cfg: MeridianConfig,
        mode: BuildMode,
        seed: u64,
        threads: usize,
    ) -> Overlay<'m, W> {
        assert!(!members.is_empty(), "empty overlay");
        assert!(
            (0.0..1.0).contains(&cfg.beta) && cfg.beta > 0.0,
            "beta must be in (0,1)"
        );
        let mut rng = rng_for(seed, 0x4D45_5244); // "MERD" (gossip mode)
        let mut rings: HashMap<PeerId, RingSet>;
        match mode {
            BuildMode::Omniscient => {
                // Offer every member to every node in (per-node) random
                // order, so capacity eviction is unbiased like gossip
                // arrival order would be. Per-node work — fill plus this
                // node's management rounds — is independent given the
                // matrix, so it fans out across workers.
                let filled = par_map(threads, &members, |i, &p| {
                    let mut order_rng = rng_from(item_seed(seed, FILL_TAG, i as u64));
                    let mut order = members.clone();
                    order.shuffle(&mut order_rng);
                    let mut rs = RingSet::new(p, cfg.rings);
                    for &q in &order {
                        if q != p {
                            rs.insert(q, world.rtt(p, q));
                        }
                    }
                    for _ in 0..cfg.manage_rounds {
                        rs.manage(|a, b| world.rtt(a, b));
                    }
                    rs
                });
                rings = members.iter().copied().zip(filled).collect();
                let origin = Some(FillOrigin {
                    seed,
                    roster: members.clone(),
                    removed: Vec::new(),
                });
                return Overlay {
                    cfg,
                    world,
                    members,
                    rings,
                    origin,
                };
            }
            BuildMode::Gossip { rounds, fanout } => {
                rings = members
                    .iter()
                    .map(|&p| (p, RingSet::new(p, cfg.rings)))
                    .collect();
                // Bootstrap: everyone knows `fanout` random members.
                for &p in &members {
                    for _ in 0..fanout {
                        let &q = members.choose(&mut rng).expect("non-empty");
                        if q != p {
                            rings
                                .get_mut(&p)
                                .expect("member ring set")
                                .insert(q, world.rtt(p, q));
                        }
                    }
                }
                for _ in 0..rounds {
                    for &p in &members {
                        // Pull one known member's view.
                        let known: Vec<PeerId> =
                            rings[&p].primaries().map(|m| m.peer).collect();
                        let Some(&q) = known.as_slice().choose(&mut rng) else {
                            continue;
                        };
                        let offer: Vec<PeerId> =
                            rings[&q].primaries().map(|m| m.peer).collect();
                        let rs = rings.get_mut(&p).expect("member ring set");
                        for r in offer {
                            if r != p {
                                rs.insert(r, world.rtt(p, r));
                            }
                        }
                        // And push ourselves to them (symmetric gossip).
                        let back = world.rtt(q, p);
                        rings.get_mut(&q).expect("member ring set").insert(p, back);
                    }
                }
            }
        }
        for _ in 0..cfg.manage_rounds {
            for &p in &members {
                rings
                    .get_mut(&p)
                    .expect("member ring set")
                    .manage(|a, b| world.rtt(a, b));
            }
        }
        Overlay {
            cfg,
            world,
            members,
            rings,
            origin: None, // gossip arrivals have no replayable stream
        }
    }

    /// [`Overlay::build_shard_local`] on the ambient thread count.
    pub fn build_shard_local(
        world: &'m W,
        members: Vec<PeerId>,
        cfg: MeridianConfig,
        seed: u64,
    ) -> Overlay<'m, W> {
        Overlay::build_shard_local_threads(world, members, cfg, seed, resolve_threads(None))
    }

    /// The shard-local omniscient ring fill, for backends exposing a
    /// [`ShardView`] (the block-compressed `ShardedWorld`). Produces
    /// rings **bit-identical** to [`BuildMode::Omniscient`] under the
    /// same seed — it is a fast path, not an approximation — while
    /// reading only (a) the node's own shard's dense block and (b) the
    /// hub summary for every other shard's members.
    ///
    /// Why it is exact: offered once each at a fixed RTT, a ring's
    /// members after the omniscient fill are precisely the **first
    /// `k`** arrivals (the primaries, in arrival order) plus the
    /// **last ≤ `l`** arrivals after them (the secondaries — the FIFO
    /// recycle keeps exactly the trailing window). So the fill only
    /// needs, per (node, ring), those `k + l` survivors of the node's
    /// shuffled offer order — which this path computes with a
    /// boundary-table ring classification over hub-summary sums (one
    /// `u64` add + a partition-point search per candidate, no `ln`, no
    /// per-offer ring bookkeeping) and then replays into a [`RingSet`].
    /// The per-node offer order is drawn from the *same*
    /// `item_seed(seed, FILL_TAG, index)` streams as the omniscient
    /// fill, so the two paths agree member for member, ring for ring
    /// (enforced by `tests/shard_local_fill.rs`), and results are
    /// bit-identical at any `threads` (enforced by
    /// `tests/parallel_determinism.rs`).
    ///
    /// `members` must not contain duplicates (scenario overlays are
    /// sorted and unique).
    ///
    /// # Panics
    /// Panics when the backend has no shard structure
    /// ([`WorldStore::shard_view`] returns `None`), when `members` is
    /// empty, or when `cfg.beta` is out of range.
    pub fn build_shard_local_threads(
        world: &'m W,
        members: Vec<PeerId>,
        cfg: MeridianConfig,
        seed: u64,
        threads: usize,
    ) -> Overlay<'m, W> {
        let view = world
            .shard_view()
            .expect("build_shard_local needs a backend with shard structure (WorldStore::shard_view)");
        assert!(!members.is_empty(), "empty overlay");
        assert!(
            (0.0..1.0).contains(&cfg.beta) && cfg.beta > 0.0,
            "beta must be in (0,1)"
        );
        let n_world = world.len();
        let n_shards = view.n_shards();
        // Flat per-peer shard/offset tables: one pass of trait calls,
        // then the per-pair hot loop is pure array reads.
        let shard_of: Vec<u32> = (0..n_world as u32)
            .map(|i| view.shard_of(PeerId(i)) as u32)
            .collect();
        let off_us: Vec<u64> = (0..n_world as u32)
            .map(|i| view.hub_offset_us(PeerId(i)))
            .collect();
        let bounds = ring_bounds(&cfg.rings);
        let (k, l, n_rings) = (cfg.rings.k, cfg.rings.l, cfg.rings.n_rings);
        let filled = par_map(threads, &members, |i, &p| {
            let mut order_rng = rng_from(item_seed(seed, FILL_TAG, i as u64));
            let mut order = members.clone();
            order.shuffle(&mut order_rng);
            let sp = shard_of[p.idx()] as usize;
            // base[s] = offset(p) + hub(s_p, s): the inter-shard prefix
            // of the exact u64 microsecond sum `rtt` reassembles.
            let base: Vec<u64> = (0..n_shards)
                .map(|s| {
                    if s == sp {
                        0
                    } else {
                        off_us[p.idx()] + view.hub_rtt_us(sp, s)
                    }
                })
                .collect();
            // Per ring: the first k arrivals, plus a circular window of
            // the ≤l arrivals after them.
            let mut first: Vec<Vec<(PeerId, u64)>> = vec![Vec::new(); n_rings];
            let mut late: Vec<Vec<(PeerId, u64)>> = vec![Vec::new(); n_rings];
            let mut late_start = vec![0usize; n_rings];
            for &q in &order {
                if q == p {
                    continue;
                }
                let sq = shard_of[q.idx()] as usize;
                let d = if sq == sp {
                    world.rtt(p, q).as_us() // own shard: the dense block
                } else {
                    base[sq] + off_us[q.idx()] // hub-summary neighbour
                };
                let r = bounds.partition_point(|&b| d >= b);
                debug_assert_eq!(
                    r,
                    cfg.rings.ring_of(Micros(d)),
                    "boundary table diverged from ring_of at {d} us"
                );
                if first[r].len() < k {
                    first[r].push((q, d));
                } else if l > 0 {
                    let lt = &mut late[r];
                    if lt.len() < l {
                        lt.push((q, d));
                    } else {
                        lt[late_start[r]] = (q, d);
                        late_start[r] = (late_start[r] + 1) % l;
                    }
                }
            }
            // Replay the survivors in arrival order: identical RingSet
            // state to having offered every member.
            let mut rs = RingSet::new(p, cfg.rings);
            for r in 0..n_rings {
                for &(q, d) in &first[r] {
                    rs.insert(q, Micros(d));
                }
                let lt = &late[r];
                for j in 0..lt.len() {
                    let (q, d) = lt[(late_start[r] + j) % lt.len()];
                    rs.insert(q, Micros(d));
                }
            }
            for _ in 0..cfg.manage_rounds {
                rs.manage(|a, b| world.rtt(a, b));
            }
            rs
        });
        let rings = members.iter().copied().zip(filled).collect();
        let origin = Some(FillOrigin {
            seed,
            roster: members.clone(),
            removed: Vec::new(),
        });
        Overlay {
            cfg,
            world,
            members,
            rings,
            origin,
        }
    }

    /// Reassemble an overlay from previously built parts (see
    /// [`Overlay::into_parts`]). `world` must be the same latency
    /// space the parts were built over — `join`/`leave`/`manage` read
    /// it — but the query path itself only consults the rings and the
    /// probe-counted target, which is what makes the parts cacheable.
    pub fn from_parts(
        world: &'m W,
        cfg: MeridianConfig,
        members: Vec<PeerId>,
        rings: HashMap<PeerId, RingSet>,
        origin: Option<FillOrigin>,
    ) -> Overlay<'m, W> {
        assert_eq!(members.len(), rings.len(), "parts out of sync");
        Overlay {
            cfg,
            world,
            members,
            rings,
            origin,
        }
    }

    /// Decompose into the world-independent parts: configuration,
    /// membership, the filled ring sets and the fill origin (replay
    /// provenance for churn repair). The parts are `'static` (rings
    /// store peer ids + RTT values, not matrix borrows), so an
    /// expensive build can be cached and re-borrowed against the same
    /// world — the experiment registry's Meridian factory does this
    /// when several registry entries wrap the same configuration.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        MeridianConfig,
        Vec<PeerId>,
        HashMap<PeerId, RingSet>,
        Option<FillOrigin>,
    ) {
        (self.cfg, self.members, self.rings, self.origin)
    }

    /// Replay provenance of the ring fill, if this overlay still has
    /// one (omniscient fills record it; gossip builds and overlays
    /// mutated by [`Overlay::join`]/[`Overlay::leave`] do not).
    pub fn origin(&self) -> Option<&FillOrigin> {
        self.origin.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MeridianConfig {
        &self.cfg
    }

    /// The ring set of a member (inspection / event-driven driver).
    pub fn rings_of(&self, p: PeerId) -> &RingSet {
        &self.rings[&p]
    }

    /// The backing latency world.
    pub fn world(&self) -> &W {
        self.world
    }

    /// Total primary ring entries across the overlay (capacity telemetry).
    pub fn total_ring_entries(&self) -> usize {
        // np-lint: allow(D1) — commutative usize sum; order cannot reach results
        self.rings.values().map(|r| r.len()).sum()
    }

    /// Run one closest-node query from an explicit start node.
    ///
    /// Fault tolerance: probes go through
    /// [`Target::try_probe_from`], so when the target carries a
    /// [`np_metric::FaultPlan`] a candidate whose probe budget is
    /// exhausted is simply *skipped* — the query routes around dead
    /// peers instead of panicking or returning garbage latencies. If
    /// the **start** node itself cannot reach the target, the query
    /// degrades gracefully to `(start, ∞)` with the attempts still
    /// counted. Without a fault plan every probe succeeds and the path
    /// is bit-identical to the fault-free implementation.
    pub fn query_from(&self, start: PeerId, target: &Target<'_>) -> QueryOutcome {
        let mut current = start;
        let Some(mut d) = target.try_probe_from(current) else {
            return QueryOutcome {
                found: start,
                rtt_to_target: Micros::INFINITY,
                probes: target.probes(),
                hops: 0,
            };
        };
        // Global best over every probe made (Meridian returns the closest
        // node *seen*, which may not be the final hop).
        let mut best = (d, current);
        let mut hops = 0u32;
        let mut visited: Vec<PeerId> = vec![current];
        loop {
            if hops >= self.cfg.max_hops || d == Micros::ZERO {
                break;
            }
            let lo = d.scale(1.0 - self.cfg.beta);
            let hi = d.scale(1.0 + self.cfg.beta);
            let candidates = self.rings[&current].primaries_in(lo, hi);
            // Every annulus member measures its latency to the target;
            // unreachable members drop out of the round.
            let mut round_best: Option<(Micros, PeerId)> = None;
            for m in candidates {
                let Some(dm) = target.try_probe_from(m.peer) else {
                    continue;
                };
                if dm < best.0 || (dm == best.0 && m.peer < best.1) {
                    best = (dm, m.peer);
                }
                if round_best
                    .map(|(bd, bp)| (dm, m.peer) < (bd, bp))
                    .unwrap_or(true)
                {
                    round_best = Some((dm, m.peer));
                }
            }
            let Some((dm, next)) = round_best else { break };
            // Acceptance threshold: forward only on geometric progress.
            if dm >= d.scale(self.cfg.beta) {
                break;
            }
            if visited.contains(&next) {
                break; // loop guard (can only happen with max-ring quirks)
            }
            visited.push(next);
            current = next;
            d = dm;
            hops += 1;
        }
        QueryOutcome {
            found: best.1,
            rtt_to_target: best.0,
            probes: target.probes(),
            hops,
        }
    }

    /// A new member joins (the deployment path the §4 simulations skip):
    /// it exchanges ring contents with `bootstrap` random members, as the
    /// gossip build does continuously.
    pub fn join(&mut self, p: PeerId, bootstrap: usize, rng: &mut StdRng) {
        if self.rings.contains_key(&p) {
            return;
        }
        let mut rs = RingSet::new(p, self.cfg.rings);
        for _ in 0..bootstrap.max(1) {
            let &q = self.members.choose(rng).expect("non-empty overlay");
            if q == p {
                continue;
            }
            // Bidirectional learning: p fills its rings from q's view and
            // announces itself to q.
            let offers: Vec<PeerId> = self.rings[&q].primaries().map(|m| m.peer).collect();
            for r in offers {
                if r != p {
                    rs.insert(r, self.world.rtt(p, r));
                }
            }
            rs.insert(q, self.world.rtt(p, q));
            self.rings
                .get_mut(&q)
                .expect("member ring set")
                .insert(p, self.world.rtt(q, p));
        }
        rs.manage(|a, b| self.world.rtt(a, b));
        self.rings.insert(p, rs);
        let pos = self.members.binary_search(&p).unwrap_or_else(|e| e);
        self.members.insert(pos, p);
        // Ring state is no longer a pure replay of the fill streams.
        self.origin = None;
    }

    /// A member departs gracefully: every ring set purges it.
    ///
    /// This is the *online* departure path (a removed primary promotes
    /// a cached secondary), which intentionally differs from replaying
    /// the fill without the departed peer — so it forfeits the replay
    /// provenance. Use [`Overlay::repair_after_leaves_threads`] when
    /// the rebuild-equivalence contract matters.
    pub fn leave(&mut self, p: PeerId) {
        if self.rings.remove(&p).is_none() {
            return;
        }
        if let Ok(pos) = self.members.binary_search(&p) {
            self.members.remove(pos);
        }
        // np-lint: allow(D1) — independent per-ring removal of one peer; visit order cannot reach results
        for rs in self.rings.values_mut() {
            rs.remove(p);
        }
        self.origin = None;
    }

    /// Incremental overlay repair after a batch of departures, with a
    /// **bit-identical-to-full-rebuild** contract: afterwards the
    /// rings equal those of [`Overlay::rebuild_surviving`] — a from-
    /// scratch omniscient fill replay over the survivor set — member
    /// for member, ring for ring (property-tested in
    /// `tests/overlay_repair.rs`).
    ///
    /// Why only a fraction of the rings need touching: in the
    /// omniscient fill each peer `q` is offered to node `p` exactly
    /// once, at the fixed latency `rtt(p, q)`, and lands in the single
    /// ring `ring_of(rtt(p, q))`; ring management never moves peers
    /// across rings. So removing `q` from the offer stream can only
    /// change that one ring of each survivor — every other ring sees
    /// the *identical* arrival subsequence and (being managed
    /// per-ring, independently) ends up in the identical state. The
    /// repair clears exactly those dirty rings and replays them from
    /// the recorded [`FillOrigin`] streams, filtered to survivors —
    /// `|departed|` rings per node instead of all `n_rings`, with ring
    /// management (the hypervolume selection that dominates fill cost)
    /// rerun only on the dirty rings.
    ///
    /// Per-survivor work is a pure function of the origin and the
    /// cumulative removed set, so it fans out across `threads` workers
    /// and the result is bit-identical at any worker count.
    ///
    /// Overlays without replay provenance (gossip builds, overlays
    /// mutated by `join`/`leave`) fall back to plain
    /// [`Overlay::leave`] per departure, counted in
    /// [`RepairStats::fallback_leaves`].
    ///
    /// Departures not currently in the overlay are ignored.
    pub fn repair_after_leaves_threads(
        &mut self,
        departed: &[PeerId],
        threads: usize,
    ) -> RepairStats {
        let mut stats = RepairStats::default();
        let going: Vec<PeerId> = {
            let mut seen = HashSet::new();
            departed
                .iter()
                .copied()
                .filter(|p| self.rings.contains_key(p) && seen.insert(*p))
                .collect()
        };
        if going.is_empty() {
            return stats;
        }
        let Some(origin) = self.origin.as_mut() else {
            for &p in &going {
                self.leave(p);
                stats.fallback_leaves += 1;
            }
            return stats;
        };
        assert!(
            going.len() < self.members.len(),
            "repair would empty the overlay"
        );
        origin.removed.extend_from_slice(&going);
        let removed_set: HashSet<PeerId> = origin.removed.iter().copied().collect();
        let origin = self.origin.clone().expect("origin checked above");
        // Drop the departed themselves.
        for &p in &going {
            self.rings.remove(&p);
            if let Ok(pos) = self.members.binary_search(&p) {
                self.members.remove(pos);
            }
        }
        let stream_of: HashMap<PeerId, u64> = origin
            .roster
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect();
        let (world, cfg) = (self.world, self.cfg);
        let rings = &self.rings;
        // Per-survivor: find the dirty rings, clear + replay them from
        // the fill stream over the survivor set, re-manage only those
        // rings. Pure per-node function → parallel and deterministic.
        let repaired = par_map(threads, &self.members, |_, &p| {
            let mut dirty: Vec<usize> = going
                .iter()
                .filter(|&&q| q != p)
                .map(|&q| cfg.rings.ring_of(world.rtt(p, q)))
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            if dirty.is_empty() {
                return (None, 0u64);
            }
            let mut rs = rings[&p].clone();
            for &r in &dirty {
                rs.clear_ring(r);
            }
            let stream = stream_of[&p];
            let mut order_rng = rng_from(item_seed(origin.seed, FILL_TAG, stream));
            let mut order = origin.roster.clone();
            order.shuffle(&mut order_rng);
            let mut inserts = 0u64;
            for &q in &order {
                if q == p || removed_set.contains(&q) {
                    continue;
                }
                let d = world.rtt(p, q);
                if dirty.binary_search(&cfg.rings.ring_of(d)).is_ok() {
                    rs.insert(q, d);
                    inserts += 1;
                }
            }
            for _ in 0..cfg.manage_rounds {
                for &r in &dirty {
                    rs.manage_ring(r, |a, b| world.rtt(a, b));
                }
            }
            (Some((rs, dirty.len() as u64)), inserts)
        });
        for (i, (res, inserts)) in repaired.into_iter().enumerate() {
            stats.ring_inserts += inserts;
            if let Some((rs, n_dirty)) = res {
                stats.rings_replayed += n_dirty;
                self.rings.insert(self.members[i], rs);
            }
        }
        stats
    }

    /// Full from-scratch rebuild over the current survivor set, by
    /// replaying the recorded fill streams with every removed peer
    /// filtered out of every offer order. This is the reference
    /// implementation the incremental
    /// [`Overlay::repair_after_leaves_threads`] is contractually
    /// bit-identical to; the equivalence is what `tests/overlay_repair.rs`
    /// pins.
    ///
    /// # Panics
    /// Panics when the overlay has no replay provenance
    /// ([`Overlay::origin`] is `None`).
    pub fn rebuild_surviving(&self, threads: usize) -> Overlay<'m, W> {
        let origin = self
            .origin
            .clone()
            .expect("rebuild_surviving needs a recorded fill origin");
        let removed_set: HashSet<PeerId> = origin.removed.iter().copied().collect();
        let (world, cfg) = (self.world, self.cfg);
        let survivors: Vec<(u64, PeerId)> = origin
            .roster
            .iter()
            .enumerate()
            .filter(|(_, p)| !removed_set.contains(p))
            .map(|(i, &p)| (i as u64, p))
            .collect();
        let filled = par_map(threads, &survivors, |_, &(stream, p)| {
            let mut order_rng = rng_from(item_seed(origin.seed, FILL_TAG, stream));
            let mut order = origin.roster.clone();
            order.shuffle(&mut order_rng);
            let mut rs = RingSet::new(p, cfg.rings);
            for &q in &order {
                if q != p && !removed_set.contains(&q) {
                    rs.insert(q, world.rtt(p, q));
                }
            }
            for _ in 0..cfg.manage_rounds {
                rs.manage(|a, b| world.rtt(a, b));
            }
            rs
        });
        let members: Vec<PeerId> = {
            let mut m: Vec<PeerId> = survivors.iter().map(|&(_, p)| p).collect();
            m.sort_unstable();
            m
        };
        let rings = survivors
            .iter()
            .map(|&(_, p)| p)
            .zip(filled)
            .collect();
        Overlay {
            cfg,
            world,
            members,
            rings,
            origin: Some(origin),
        }
    }

    /// Pick a uniform random start member (≠ target when possible).
    pub fn random_start(&self, rng: &mut StdRng, target: PeerId) -> PeerId {
        for _ in 0..64 {
            let &p = self.members.choose(rng).expect("non-empty");
            if p != target {
                return p;
            }
        }
        self.members[0]
    }
}

impl<W: WorldStore + ?Sized> NearestPeerAlgo for Overlay<'_, W> {
    fn name(&self) -> &str {
        "meridian"
    }

    fn members(&self) -> &[PeerId] {
        &self.members
    }

    fn find_nearest(&self, target: &Target<'_>, rng: &mut StdRng) -> QueryOutcome {
        let start = self.random_start(rng, target.id());
        self.query_from(start, target)
    }
}

/// Build-mode independent smoke check used by tests and benches: a small
/// uniform world where Meridian should almost always find the true
/// nearest peer.
#[doc(hidden)]
pub fn line_world(n: usize) -> LatencyMatrix {
    LatencyMatrix::build(n, |a, b| {
        Micros::from_ms_u64((a.0 as i64 - b.0 as i64).unsigned_abs())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_util::rng::rng_from;

    /// The §4 cluster shape in miniature: `g` end-networks of 2 peers
    /// each, one cluster; EN i at `4+i·jitter` ms from the hub.
    fn cluster_matrix(g: usize, delta_ms: f64) -> LatencyMatrix {
        let n = g * 2;
        LatencyMatrix::build(n, |a, b| {
            let (ea, eb) = (a.idx() / 2, b.idx() / 2);
            if ea == eb {
                Micros::from_us(100)
            } else {
                let ha = 4.0 + delta_ms * (ea as f64 / g as f64);
                let hb = 4.0 + delta_ms * (eb as f64 / g as f64);
                Micros::from_ms(ha + hb)
            }
        })
    }

    #[test]
    fn finds_nearest_on_a_line() {
        // Paper setup: targets are held OUT of the overlay. Members are
        // the even peers; odd peers are queried as targets; the true
        // nearest member is an adjacent even peer at 1 ms.
        let m = line_world(64);
        let members: Vec<PeerId> = (0..64).step_by(2).map(|i| PeerId(i as u32)).collect();
        let overlay = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            1,
        );
        let mut rng = rng_from(2);
        let mut hits = 0;
        let targets: Vec<u32> = (1..64).step_by(2).map(|i| i as u32).collect();
        for &t in &targets {
            let target = Target::new(PeerId(t), &m);
            let out = overlay.find_nearest(&target, &mut rng);
            let truth = m
                .nearest_within(PeerId(t), &members)
                .expect("others exist");
            // Accept either equidistant neighbour.
            if m.rtt(out.found, PeerId(t)) == m.rtt(truth, PeerId(t)) {
                hits += 1;
            }
            assert!(out.probes > 0);
            assert!(members.contains(&out.found), "answer from the overlay");
        }
        assert!(
            hits >= targets.len() - 2,
            "line-world accuracy too low: {hits}/{}",
            targets.len()
        );
    }

    #[test]
    fn query_makes_geometric_progress() {
        let m = line_world(128);
        let members: Vec<PeerId> = (1..128).map(PeerId).collect(); // target 0 held out
        let overlay = Overlay::build(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Omniscient,
            3,
        );
        // Start far from the target: hop count must stay logarithmic-ish.
        let target = Target::new(PeerId(0), &m);
        let out = overlay.query_from(PeerId(127), &target);
        assert!(out.hops <= 12, "too many hops: {}", out.hops);
        assert!(out.rtt_to_target <= Micros::from_ms_u64(2));
    }

    #[test]
    fn degrades_under_clustering() {
        // One big cluster with tiny intra-cluster variation: Meridian
        // should usually fail to find the end-network partner (paper §2.3)
        // but always land inside the cluster.
        let m = cluster_matrix(60, 0.4);
        let members: Vec<PeerId> = (2..120).map(PeerId).collect(); // peer 0,1's EN partner 1 stays
        let overlay = Overlay::build(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Omniscient,
            5,
        );
        let mut rng = rng_from(7);
        let mut exact = 0;
        let runs = 40;
        for _ in 0..runs {
            let target = Target::new(PeerId(0), &m);
            let out = overlay.find_nearest(&target, &mut rng);
            if out.found == PeerId(1) {
                exact += 1;
            }
        }
        assert!(
            exact < runs / 2,
            "clustering should defeat Meridian most of the time, got {exact}/{runs}"
        );
    }

    #[test]
    fn gossip_build_is_functional() {
        let m = line_world(48);
        let members: Vec<PeerId> = (0..48).step_by(2).map(|i| PeerId(i as u32)).collect();
        let overlay = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Gossip {
                rounds: 8,
                fanout: 4,
            },
            9,
        );
        assert!(
            overlay.total_ring_entries() >= members.len() * 4,
            "gossip should populate rings"
        );
        let mut rng = rng_from(11);
        let mut close = 0;
        let targets: Vec<u32> = (1..48).step_by(4).map(|i| i as u32).collect();
        for &t in &targets {
            let target = Target::new(PeerId(t), &m);
            let out = overlay.find_nearest(&target, &mut rng);
            if m.rtt(out.found, PeerId(t)) <= Micros::from_ms_u64(3) {
                close += 1;
            }
        }
        assert!(
            close * 4 >= targets.len() * 3,
            "gossip overlay too weak: {close}/{}",
            targets.len()
        );
    }

    #[test]
    fn beta_trades_probes_for_accuracy() {
        let m = line_world(96);
        let members: Vec<PeerId> = (0..96).map(PeerId).collect();
        let mut probes_by_beta = Vec::new();
        for beta in [0.25, 0.5, 0.75] {
            let overlay = Overlay::build(
                &m,
                members.clone(),
                MeridianConfig {
                    beta,
                    ..MeridianConfig::default()
                },
                BuildMode::Omniscient,
                13,
            );
            let mut rng = rng_from(17);
            let mut total = 0u64;
            for t in (0..96u32).step_by(6) {
                let target = Target::new(PeerId(t), &m);
                total += overlay.find_nearest(&target, &mut rng).probes;
            }
            probes_by_beta.push(total);
        }
        // A wider annulus (larger beta) probes more.
        assert!(
            probes_by_beta[0] < probes_by_beta[2],
            "beta=0.25 ({}) should cost fewer probes than beta=0.75 ({})",
            probes_by_beta[0],
            probes_by_beta[2]
        );
    }

    #[test]
    fn churn_joins_are_discoverable_and_leaves_are_forgotten() {
        let m = line_world(64);
        // Sparse overlay (every 4th peer) so a joined peer at 31 becomes
        // the unique nearest member of the held-out target 30 (1 ms vs
        // 2 ms for members 28/32).
        let members: Vec<PeerId> = (0..64).step_by(4).map(|i| PeerId(i as u32)).collect();
        let mut overlay = Overlay::build(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Omniscient,
            41,
        );
        let mut rng = rng_from(43);
        overlay.join(PeerId(31), 8, &mut rng);
        assert!(overlay.members().contains(&PeerId(31)));
        let mut found31 = false;
        for _ in 0..10 {
            let target = Target::new(PeerId(30), &m);
            let out = overlay.find_nearest(&target, &mut rng);
            if out.found == PeerId(31) {
                found31 = true;
                break;
            }
        }
        assert!(found31, "joined peer never discovered");
        // Leave: the peer disappears from every ring and from answers.
        overlay.leave(PeerId(31));
        assert!(!overlay.members().contains(&PeerId(31)));
        for &p in overlay.members() {
            assert!(
                !overlay.rings_of(p).primaries().any(|mm| mm.peer == PeerId(31)),
                "departed peer still in {p}'s rings"
            );
        }
        for _ in 0..10 {
            let target = Target::new(PeerId(30), &m);
            let out = overlay.find_nearest(&target, &mut rng);
            assert_ne!(out.found, PeerId(31), "departed peer returned");
        }
        // Queries still work end to end after churn.
        let target = Target::new(PeerId(1), &m);
        let out = overlay.find_nearest(&target, &mut rng);
        assert!(m.rtt(out.found, PeerId(1)) <= Micros::from_ms_u64(3));
    }

    #[test]
    fn ring_bounds_classify_exactly_like_ring_of() {
        for cfg in [
            RingConfig::default(),
            RingConfig {
                alpha: Micros::from_us(700),
                s: 1.7,
                n_rings: 9,
                ..RingConfig::default()
            },
            RingConfig {
                n_rings: 1,
                ..RingConfig::default()
            },
        ] {
            let bounds = ring_bounds(&cfg);
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "bounds must be sorted");
            // Dense sweep near the origin plus every boundary's
            // neighbourhood — the spots where a float log could
            // disagree with the table.
            let mut probes: Vec<u64> = (0..5_000).collect();
            for &b in &bounds {
                probes.extend([b.saturating_sub(1), b, b + 1]);
            }
            probes.extend([1 << 30, 1 << 40, (1 << 45) - 1]);
            for d in probes {
                assert_eq!(
                    bounds.partition_point(|&b| d >= b),
                    cfg.ring_of(Micros(d)),
                    "classification diverged at {d} us (alpha {:?}, s {})",
                    cfg.alpha,
                    cfg.s
                );
            }
        }
    }

    /// The tentpole contract in miniature: the shard-local fill is a
    /// fast path, not an approximation — identical rings to the
    /// omniscient fill over the same sharded store and seed.
    #[test]
    fn shard_local_fill_matches_omniscient_rings() {
        use np_topology::{ClusterWorld, ClusterWorldSpec};
        let world = ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 5,
                en_per_cluster: 12,
                peers_per_en: 2,
                delta: 0.3,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 7,
            },
            31,
        );
        let sharded = world.to_sharded_threads(2);
        let members: Vec<PeerId> = world.peers().skip(8).collect();
        let omniscient = Overlay::build_threads(
            &sharded,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            31,
            2,
        );
        let local = Overlay::build_shard_local_threads(
            &sharded,
            members.clone(),
            MeridianConfig::default(),
            31,
            2,
        );
        assert_eq!(omniscient.total_ring_entries(), local.total_ring_entries());
        for &p in &members {
            let a: Vec<(PeerId, Micros)> = omniscient
                .rings_of(p)
                .primaries()
                .map(|m| (m.peer, m.rtt))
                .collect();
            let b: Vec<(PeerId, Micros)> = local
                .rings_of(p)
                .primaries()
                .map(|m| (m.peer, m.rtt))
                .collect();
            assert_eq!(a, b, "rings of {p} diverged");
        }
        // And the query path sees no difference either.
        let t1 = Target::new(PeerId(0), &sharded);
        let t2 = Target::new(PeerId(0), &sharded);
        assert_eq!(
            omniscient.find_nearest(&t1, &mut rng_from(5)),
            local.find_nearest(&t2, &mut rng_from(5))
        );
    }

    #[test]
    #[should_panic(expected = "shard structure")]
    fn shard_local_fill_rejects_flat_backends() {
        let m = line_world(8);
        let members: Vec<PeerId> = (0..8).map(PeerId).collect();
        Overlay::build_shard_local(&m, members, MeridianConfig::default(), 1);
    }

    /// Exhaustive ring-state comparison (primaries AND secondaries, in
    /// stored order) — the currency of the repair contract.
    fn ring_state<W: WorldStore + ?Sized>(
        o: &Overlay<'_, W>,
    ) -> Vec<(PeerId, Vec<(PeerId, Micros)>, Vec<(PeerId, Micros)>)> {
        let mut out: Vec<_> = o
            .members()
            .iter()
            .map(|&p| {
                let rs = o.rings_of(p);
                (
                    p,
                    rs.primaries().map(|m| (m.peer, m.rtt)).collect(),
                    rs.secondaries().map(|m| (m.peer, m.rtt)).collect(),
                )
            })
            .collect();
        out.sort_by_key(|(p, _, _)| *p);
        out
    }

    #[test]
    fn repair_is_bit_identical_to_full_rebuild() {
        let m = cluster_matrix(40, 0.5);
        let members: Vec<PeerId> = (0..80).map(PeerId).collect();
        let mut overlay = Overlay::build_threads(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Omniscient,
            77,
            2,
        );
        // Three rounds of batched departures, repaired incrementally;
        // after each round the rings must equal a from-scratch replay
        // over the survivor set.
        for round in [vec![5u32, 17, 33], vec![2, 60], vec![61, 62, 63, 40]] {
            let departed: Vec<PeerId> = round.iter().copied().map(PeerId).collect();
            let stats = overlay.repair_after_leaves_threads(&departed, 2);
            assert_eq!(stats.fallback_leaves, 0);
            assert!(stats.rings_replayed > 0, "dirty rings must be found");
            assert!(
                (stats.rings_replayed as usize)
                    <= overlay.members().len() * departed.len(),
                "at most |departed| dirty rings per survivor"
            );
            let rebuilt = overlay.rebuild_surviving(2);
            assert_eq!(overlay.members(), rebuilt.members());
            assert_eq!(
                ring_state(&overlay),
                ring_state(&rebuilt),
                "incremental repair diverged from full survivor rebuild"
            );
            for &p in &departed {
                assert!(!overlay.members().contains(&p));
            }
        }
    }

    #[test]
    fn repair_is_thread_count_invariant_and_ignores_strangers() {
        let m = line_world(60);
        let members: Vec<PeerId> = (0..60).map(PeerId).collect();
        let build = || {
            Overlay::build_threads(
                &m,
                members.clone(),
                MeridianConfig::default(),
                BuildMode::Omniscient,
                19,
                2,
            )
        };
        let departed = [PeerId(3), PeerId(200), PeerId(44), PeerId(3)];
        let mut serial = build();
        let s1 = serial.repair_after_leaves_threads(&departed, 1);
        for threads in [2, 8] {
            let mut par = build();
            let sn = par.repair_after_leaves_threads(&departed, threads);
            assert_eq!(s1, sn, "repair stats diverged at {threads} threads");
            assert_eq!(ring_state(&serial), ring_state(&par));
        }
        // The stranger (200) and the duplicate were ignored: only two
        // real departures happened.
        assert_eq!(serial.members().len(), 58);
    }

    #[test]
    fn repair_without_origin_falls_back_to_plain_leave() {
        let m = line_world(48);
        let members: Vec<PeerId> = (0..48).step_by(2).map(|i| PeerId(i as u32)).collect();
        let mut overlay = Overlay::build(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Gossip {
                rounds: 6,
                fanout: 4,
            },
            9,
        );
        assert!(overlay.origin().is_none(), "gossip records no origin");
        let stats = overlay.repair_after_leaves_threads(&[PeerId(4), PeerId(10)], 2);
        assert_eq!(stats.fallback_leaves, 2);
        assert_eq!(stats.rings_replayed, 0);
        assert!(!overlay.members().contains(&PeerId(4)));
        for &p in overlay.members() {
            assert!(!overlay
                .rings_of(p)
                .primaries()
                .any(|mm| mm.peer == PeerId(4)));
        }
    }

    #[test]
    fn join_and_leave_forfeit_the_replay_origin() {
        let m = line_world(32);
        let members: Vec<PeerId> = (0..32).step_by(2).map(|i| PeerId(i as u32)).collect();
        let mut overlay = Overlay::build(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Omniscient,
            23,
        );
        let origin = overlay.origin().expect("omniscient fill records origin");
        assert_eq!(origin.seed, 23);
        assert_eq!(origin.roster.len(), 16);
        assert!(origin.removed.is_empty());
        let mut rng = rng_from(2);
        overlay.join(PeerId(5), 4, &mut rng);
        assert!(overlay.origin().is_none(), "join invalidates the origin");
        let stats = overlay.repair_after_leaves_threads(&[PeerId(5)], 2);
        assert_eq!(stats.fallback_leaves, 1);
    }

    #[test]
    fn query_routes_around_dead_peers_without_panicking() {
        use np_metric::FaultPlan;
        let m = line_world(64);
        let members: Vec<PeerId> = (0..64).step_by(2).map(|i| PeerId(i as u32)).collect();
        let overlay = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            7,
        );
        // Heavy loss, tight budget: every query must still terminate
        // with an overlay member (or the start node) as the answer.
        for q in 0..24u64 {
            let target = Target::with_faults(
                PeerId(33),
                &m,
                FaultPlan {
                    loss: 0.45,
                    attempts: 2,
                    seed: q,
                },
            );
            let out = overlay.query_from(PeerId(62), &target);
            assert!(members.contains(&out.found));
            assert!(out.probes > 0, "attempts are always counted");
        }
        // Total blackout: graceful (start, ∞) outcome.
        let target = Target::with_faults(
            PeerId(33),
            &m,
            FaultPlan {
                loss: 1.0,
                attempts: 3,
                seed: 1,
            },
        );
        let out = overlay.query_from(PeerId(62), &target);
        assert_eq!(out.found, PeerId(62));
        assert_eq!(out.rtt_to_target, Micros::INFINITY);
        assert_eq!(out.hops, 0);
        assert_eq!(out.probes, 3, "the budget was spent before giving up");
    }

    #[test]
    fn deterministic_given_seeds() {
        let m = line_world(32);
        let members: Vec<PeerId> = (0..32).map(PeerId).collect();
        let o1 = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            21,
        );
        let o2 = Overlay::build(
            &m,
            members,
            MeridianConfig::default(),
            BuildMode::Omniscient,
            21,
        );
        let t1 = Target::new(PeerId(5), &m);
        let t2 = Target::new(PeerId(5), &m);
        let a = o1.find_nearest(&t1, &mut rng_from(1));
        let b = o2.find_nearest(&t2, &mut rng_from(1));
        assert_eq!(a, b);
    }
}
