//! # np-meridian
//!
//! A reimplementation of **Meridian** (Wong, Slivkins & Sirer, SIGCOMM
//! 2005) — the nearest-node algorithm the paper under reproduction uses
//! as its reference system (§2.3 analysis, §4 simulations).
//!
//! Structure:
//!
//! * [`rings`] — the per-node multi-ring structure: ring `i` holds peers
//!   with RTT in `[α·sⁱ⁻¹, α·sⁱ)` (α = 1 ms, s = 2), with up to `k`
//!   primary and `l` secondary members per ring,
//! * [`hypervolume`] — ring-membership management: among `k+l` candidates
//!   keep the `k` whose latency-simplex has maximal hypervolume
//!   (Cayley–Menger determinant, greedy backward elimination) — the
//!   "high hypervolume" member selection the paper's §2.3 discusses,
//! * [`overlay`] — overlay construction (omniscient fill, as in the
//!   authors' simulator, or gossip warm-up) and the [`overlay::Overlay`]
//!   type implementing [`np_metric::NearestPeerAlgo`] via β-routing:
//!   probe ring members within `[(1-β)d, (1+β)d]`, forward when the best
//!   reply improves on `β·d`, stop otherwise (β = 0.5, 16 per ring — the
//!   paper's §4 settings),
//! * [`proto`] — the same query as a message-level protocol on the
//!   `np-netsim` kernel (probe RPCs, timeouts), used to check that the
//!   query logic survives real message interleavings.

pub mod factory;
pub mod hypervolume;
pub mod overlay;
pub mod proto;
pub mod rings;

pub use factory::MeridianFactory;
pub use overlay::{BuildMode, FillOrigin, MeridianConfig, Overlay, RepairStats};
