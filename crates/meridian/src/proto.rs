//! Event-driven Meridian: the closest-node query as a real protocol.
//!
//! The direct-call query in [`crate::overlay`] is the paper's simulation
//! abstraction. This module runs the same logic message-by-message on the
//! `np-netsim` kernel: the *target* node (the newly joining peer) fires a
//! query at a random overlay member; the handling member pings the target
//! to learn `d`, fans `ProbeReq`s out to its β-annulus ring members, each
//! of which pings the target and reports back; the handler then forwards
//! the query or answers the target. Probe RTTs are *measured with the
//! virtual clock* (ping/pong round trips), not read from a matrix — so
//! the event-driven run validates that the query logic survives message
//! timing, reordering and loss.

use crate::overlay::Overlay;
use np_metric::NearestPeerAlgo as _;
use crate::rings::RingSet;
use np_metric::PeerId;
use np_netsim::kernel::{Ctx, Node, NodeAddr, Sim, SimTime};
use np_netsim::link::LinkModel;
use np_util::Micros;
use std::collections::HashMap;

/// Protocol messages. `u32` peer indices are overlay-member positions
/// (== their `NodeAddr`), keeping messages wire-friendly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Injected into the target node to kick a query off.
    Start { first_member: u32 },
    /// The query token, carried hop to hop.
    Query {
        qid: u64,
        origin: u32,
        hops: u32,
        best_rtt_us: u64,
        best_peer: u32,
        visited: Vec<u32>,
    },
    /// Latency probe to the target…
    Ping { qid: u64 },
    /// …and its echo.
    Pong { qid: u64 },
    /// "Measure your latency to the target for me."
    ProbeReq { qid: u64, origin: u32 },
    /// The measured result.
    ProbeResp { qid: u64, rtt_us: u64 },
    /// Final answer, delivered to the origin (the target).
    Answer {
        found: u32,
        rtt_us: u64,
        hops: u32,
    },
}

/// Result the target node ends up holding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoOutcome {
    pub found: PeerId,
    pub rtt_to_target: Micros,
    pub hops: u32,
    /// Pings the target answered — the protocol-level probe count.
    pub probes: u64,
}

/// Per-query state at a handling member.
struct Pending {
    origin: u32,
    hops: u32,
    best_rtt: Micros,
    best_peer: u32,
    visited: Vec<u32>,
    d_self: Option<Micros>,
    ping_sent: SimTime,
    outstanding: usize,
    responses: Vec<(Micros, u32)>,
}

/// A remote-probe duty: ping the target, report to `origin`.
struct ProbeDuty {
    requester: NodeAddr,
    ping_sent: SimTime,
}

/// The roles a simulated node can play.
enum Role {
    Member {
        rings: RingSet,
        beta: f64,
        pending: HashMap<u64, Pending>,
        duties: HashMap<u64, ProbeDuty>,
    },
    Target {
        pings_answered: u64,
        outcome: Option<ProtoOutcome>,
        members: Vec<PeerId>,
    },
}

/// A node in the event-driven Meridian simulation.
pub struct MeridianNode {
    role: Role,
    target_addr: NodeAddr,
    probe_timeout: Micros,
    next_qid: u64,
}

/// Timer token space: low bits carry the qid.
const TIMER_PROBE_ROUND: u64 = 1 << 60;

impl MeridianNode {
    fn annulus(&self, d: Micros) -> Vec<(PeerId, Micros)> {
        match &self.role {
            Role::Member { rings, beta, .. } => rings
                .primaries_in(d.scale(1.0 - beta), d.scale(1.0 + beta))
                .into_iter()
                .map(|m| (m.peer, m.rtt))
                .collect(),
            Role::Target { .. } => Vec::new(),
        }
    }

    /// Resolve a finished probe round: forward or answer.
    fn conclude(&mut self, ctx: &mut Ctx<'_, Msg>, qid: u64) {
        let Role::Member { pending, beta, .. } = &mut self.role else {
            return;
        };
        let Some(p) = pending.remove(&qid) else {
            return;
        };
        let d = p.d_self.expect("concluded before self-probe");
        let mut best_rtt = p.best_rtt;
        let mut best_peer = p.best_peer;
        let mut round_best: Option<(Micros, u32)> = None;
        for &(rtt, peer) in &p.responses {
            if rtt < best_rtt || (rtt == best_rtt && peer < best_peer) {
                best_rtt = rtt;
                best_peer = peer;
            }
            if round_best
                .map(|(br, bp)| (rtt, peer) < (br, bp))
                .unwrap_or(true)
            {
                round_best = Some((rtt, peer));
            }
        }
        let forward = match round_best {
            Some((rtt, peer)) => {
                rtt < d.scale(*beta) && !p.visited.contains(&peer)
            }
            None => false,
        };
        if forward {
            let (_, next) = round_best.expect("checked above");
            let mut visited = p.visited;
            visited.push(next);
            ctx.send(
                NodeAddr(next),
                Msg::Query {
                    qid,
                    origin: p.origin,
                    hops: p.hops + 1,
                    best_rtt_us: best_rtt.as_us(),
                    best_peer,
                    visited,
                },
            );
        } else {
            ctx.send(
                NodeAddr(p.origin),
                Msg::Answer {
                    found: best_peer,
                    rtt_us: best_rtt.as_us(),
                    hops: p.hops,
                },
            );
        }
    }
}

impl Node<Msg> for MeridianNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeAddr, msg: Msg) {
        let target_addr = self.target_addr;
        match msg {
            Msg::Start { first_member } => {
                if let Role::Target { .. } = self.role {
                    let qid = self.next_qid;
                    self.next_qid += 1;
                    ctx.send(
                        NodeAddr(first_member),
                        Msg::Query {
                            qid,
                            origin: ctx.me().0,
                            hops: 0,
                            best_rtt_us: Micros::INFINITY.as_us(),
                            best_peer: first_member,
                            visited: vec![first_member],
                        },
                    );
                }
            }
            Msg::Query {
                qid,
                origin,
                hops,
                best_rtt_us,
                best_peer,
                visited,
            } => {
                if let Role::Member { pending, .. } = &mut self.role {
                    pending.insert(
                        qid,
                        Pending {
                            origin,
                            hops,
                            best_rtt: Micros(best_rtt_us),
                            best_peer,
                            visited,
                            d_self: None,
                            ping_sent: ctx.now(),
                            outstanding: 0,
                            responses: Vec::new(),
                        },
                    );
                    ctx.send(target_addr, Msg::Ping { qid });
                }
            }
            Msg::Ping { qid } => {
                if let Role::Target { pings_answered, .. } = &mut self.role {
                    *pings_answered += 1;
                    ctx.send(from, Msg::Pong { qid });
                } else {
                    // Members never get pinged in this protocol.
                }
            }
            Msg::Pong { qid } => {
                // Either our own self-probe or a probe duty.
                let me = ctx.me().0;
                if let Role::Member {
                    pending, duties, ..
                } = &mut self.role
                {
                    if let Some(duty) = duties.remove(&qid) {
                        let rtt = ctx.now().since(duty.ping_sent);
                        ctx.send(
                            duty.requester,
                            Msg::ProbeResp {
                                qid,
                                rtt_us: rtt.as_us(),
                            },
                        );
                        return;
                    }
                    let Some(p) = pending.get_mut(&qid) else { return };
                    if p.d_self.is_none() {
                        let d = ctx.now().since(p.ping_sent);
                        p.d_self = Some(d);
                        // Our own measurement competes for "best".
                        if d < p.best_rtt || (d == p.best_rtt && me < p.best_peer) {
                            p.best_rtt = d;
                            p.best_peer = me;
                        }
                        let fanout = self.annulus(d);
                        // Re-borrow after annulus() (immutable self use).
                        if let Role::Member { pending, .. } = &mut self.role {
                            let p = pending.get_mut(&qid).expect("still pending");
                            p.outstanding = fanout.len();
                            if fanout.is_empty() {
                                self.conclude(ctx, qid);
                            } else {
                                for (peer, _) in fanout {
                                    ctx.send(
                                        NodeAddr(peer.0),
                                        Msg::ProbeReq { qid, origin: me },
                                    );
                                }
                                ctx.set_timer(self.probe_timeout, TIMER_PROBE_ROUND | qid);
                            }
                        }
                    }
                }
            }
            Msg::ProbeReq { qid, origin } => {
                if let Role::Member { duties, .. } = &mut self.role {
                    duties.insert(
                        qid,
                        ProbeDuty {
                            requester: NodeAddr(origin),
                            ping_sent: ctx.now(),
                        },
                    );
                    ctx.send(target_addr, Msg::Ping { qid });
                }
            }
            Msg::ProbeResp { qid, rtt_us } => {
                let mut done = false;
                if let Role::Member { pending, .. } = &mut self.role {
                    if let Some(p) = pending.get_mut(&qid) {
                        p.responses.push((Micros(rtt_us), from.0));
                        p.outstanding -= 1;
                        done = p.outstanding == 0;
                    }
                }
                if done {
                    self.conclude(ctx, qid);
                }
            }
            Msg::Answer {
                found,
                rtt_us,
                hops,
            } => {
                if let Role::Target {
                    outcome,
                    pings_answered,
                    members,
                } = &mut self.role
                {
                    *outcome = Some(ProtoOutcome {
                        found: members[found as usize],
                        rtt_to_target: Micros(rtt_us),
                        hops,
                        probes: *pings_answered,
                    });
                    ctx.stop();
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token & TIMER_PROBE_ROUND != 0 {
            // Probe round deadline: conclude with whatever arrived.
            self.conclude(ctx, token & !TIMER_PROBE_ROUND);
        }
    }
}

/// Drive one event-driven query over a built overlay.
///
/// Node layout: member `i` of `overlay.members()` is `NodeAddr(i)`; the
/// target is the last node. The link model must map these addresses
/// (e.g. [`matrix_link`]). Returns the outcome plus the virtual time the
/// query took.
pub fn run_query<L: LinkModel>(
    overlay: &Overlay<'_>,
    target: PeerId,
    first_member_idx: usize,
    link: L,
    seed: u64,
) -> (Option<ProtoOutcome>, SimTime) {
    let members = overlay.members().to_vec();
    let target_addr = NodeAddr(members.len() as u32);
    let probe_timeout = Micros::from_secs(2.0);
    // Ring sets speak PeerId; the wire speaks NodeAddr (member index).
    // Remap every ring member into address space once, up front.
    let addr_of: HashMap<PeerId, u32> = members
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let mut nodes: Vec<MeridianNode> = members
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let src = overlay.rings_of(p);
            let mut rings = RingSet::new(PeerId(i as u32), *src.config());
            for m in src.primaries() {
                rings.insert(PeerId(addr_of[&m.peer]), m.rtt);
            }
            MeridianNode {
                role: Role::Member {
                    rings,
                    beta: overlay.config().beta,
                    pending: HashMap::new(),
                    duties: HashMap::new(),
                },
                target_addr,
                probe_timeout,
                next_qid: 1,
            }
        })
        .collect();
    nodes.push(MeridianNode {
        role: Role::Target {
            pings_answered: 0,
            outcome: None,
            members: members.clone(),
        },
        target_addr,
        probe_timeout,
        next_qid: 1,
    });
    let mut sim = Sim::new(nodes, link, seed);
    sim.inject(
        target_addr,
        target_addr,
        Msg::Start {
            first_member: first_member_idx as u32,
        },
    );
    sim.run_until(SimTime(60_000_000)); // 60 virtual seconds
    let when = sim.now();
    let nodes = sim.into_nodes();
    let outcome = match &nodes[target_addr.idx()].role {
        Role::Target { outcome, .. } => outcome.clone(),
        _ => None,
    };
    let _ = target; // identity documented by the link model mapping
    (outcome, when)
}

/// A link model mapping the [`run_query`] address layout onto a latency
/// matrix: one-way delay = RTT/2; the target node is `members[.]`-indexed
/// separately.
pub fn matrix_link<'m>(
    matrix: &'m np_metric::LatencyMatrix,
    members: &'m [PeerId],
    target: PeerId,
) -> impl LinkModel + 'm {
    let members = members.to_vec();
    np_netsim::link::FnLink::new(move |a: NodeAddr, b: NodeAddr| {
        let resolve = |n: NodeAddr| -> PeerId {
            if n.idx() == members.len() {
                target
            } else {
                members[n.idx()]
            }
        };
        matrix.rtt(resolve(a), resolve(b)) / 2
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::{line_world, BuildMode, MeridianConfig};
    use np_metric::Target;

    fn built(n: usize) -> (np_metric::LatencyMatrix, Vec<PeerId>) {
        let m = line_world(n);
        let members: Vec<PeerId> = (1..n as u32).map(PeerId).collect();
        (m, members)
    }

    #[test]
    fn event_driven_matches_direct_query() {
        let (m, members) = built(48);
        let overlay = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            31,
        );
        let target = PeerId(0);
        // Direct query from member index 40.
        let t = Target::new(target, &m);
        let direct = overlay.query_from(members[40], &t);
        // Event-driven query from the same start.
        let link = matrix_link(&m, &members, target);
        let (proto, _) = run_query(&overlay, target, 40, link, 7);
        let proto = proto.expect("query completed");
        assert_eq!(proto.found, direct.found, "both modes agree on the peer");
        assert_eq!(proto.rtt_to_target, direct.rtt_to_target);
        assert_eq!(proto.hops, direct.hops);
    }

    #[test]
    fn query_time_is_plausible() {
        let (m, members) = built(32);
        let overlay = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            33,
        );
        let target = PeerId(0);
        let link = matrix_link(&m, &members, target);
        let (outcome, when) = run_query(&overlay, target, 20, link, 7);
        assert!(outcome.is_some());
        // A handful of RTT-scale round trips: well under a second of
        // virtual time for a ≤31 ms-diameter world.
        assert!(when.as_ms() < 1_000.0, "query took {} ms", when.as_ms());
        assert!(when.as_ms() > 1.0, "suspiciously instant");
    }

    #[test]
    fn survives_probe_loss_via_timeouts() {
        let (m, members) = built(32);
        let overlay = Overlay::build(
            &m,
            members.clone(),
            MeridianConfig::default(),
            BuildMode::Omniscient,
            35,
        );
        let target = PeerId(0);
        let base = matrix_link(&m, &members, target);
        // 10 % loss: timeouts must still conclude the query.
        let lossy = np_netsim::link::Lossy::new(base, 0.10);
        let (outcome, _) = run_query(&overlay, target, 25, lossy, 11);
        // The query may or may not finish (the Answer itself can be
        // lost), but it must not wedge the simulator; when it finishes,
        // the answer must be a real member.
        if let Some(out) = outcome {
            assert!(members.contains(&out.found));
        }
    }
}
