//! Simplex hypervolume from pairwise distances, and max-volume subset
//! selection.
//!
//! Meridian's ring management keeps the `k` members (out of `k + l`
//! candidates) that span the largest hypervolume in latency space; the
//! Cayley–Menger determinant computes a simplex's squared volume purely
//! from pairwise distances, which is exactly what a latency matrix
//! provides. Under the clustering condition all candidate subsets become
//! near-degenerate (volume ≈ 0) and the selection loses its power — the
//! argument of §2.3 of the reproduction's paper — which the tests below
//! witness directly.

/// Squared-volume *comparator* for a point set given squared pairwise
/// distances: the Cayley–Menger determinant with the sign normalised so
/// that larger = larger simplex volume.
///
/// For `n` points the CM matrix is `(n+1)×(n+1)`:
///
/// ```text
/// | 0  1    1    ... |
/// | 1  0    d01² ... |
/// | 1  d01² 0    ... |
/// | ...              |
/// ```
///
/// `V² = (-1)^(n) · det(CM) / (2^(n-1) · ((n-1)!)²)` for an
/// `(n-1)`-simplex; the positive constant is irrelevant for comparisons
/// between equal-sized sets, so this function returns
/// `(-1)^n · det(CM)` directly (≥ 0 for any metric input, up to floating
/// error).
pub fn cm_volume_measure(d2: &[Vec<f64>]) -> f64 {
    let n = d2.len();
    let mut scratch = Vec::new();
    cm_volume_measure_flat(n, |i, j| d2[i][j], &mut scratch)
}

/// [`cm_volume_measure`] without per-call allocation: the CM matrix is
/// assembled row-major into `scratch` (grown as needed, reused across
/// calls). Identical arithmetic, identical operation order, identical
/// result bits — the ring-management hot loop runs thousands of these
/// per overlay node, and the `Vec<Vec<f64>>` churn of the naive version
/// dominated the Meridian build long before the floating-point work
/// did.
pub fn cm_volume_measure_flat(
    n: usize,
    mut d2: impl FnMut(usize, usize) -> f64,
    scratch: &mut Vec<f64>,
) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let m = n + 1;
    scratch.clear();
    scratch.resize(m * m, 0.0);
    let a = scratch.as_mut_slice();
    for i in 1..m {
        a[i] = 1.0;
        a[i * m] = 1.0;
    }
    for i in 0..n {
        for j in 0..n {
            a[(i + 1) * m + j + 1] = d2(i, j);
        }
    }
    let det = determinant(a, m);
    if n % 2 == 0 {
        det
    } else {
        -det
    }
}

/// In-place LU determinant with partial pivoting over a row-major
/// `n×n` slice. Same pivoting rule and update order as the historical
/// `Vec<Vec<f64>>` version — bit-identical determinants.
fn determinant(a: &mut [f64], n: usize) -> f64 {
    let mut det = 1.0f64;
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col] == 0.0 {
            return 0.0;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(pivot * n + k, col * n + k);
            }
            det = -det;
        }
        det *= a[col * n + col];
        let inv = 1.0 / a[col * n + col];
        for row in (col + 1)..n {
            let f = a[row * n + col] * inv;
            if f == 0.0 {
                continue;
            }
            let (upper, lower) = a.split_at_mut(row * n);
            let src = &upper[col * n..col * n + n];
            let dst = &mut lower[..n];
            for k in col..n {
                dst[k] -= f * src[k];
            }
        }
    }
    det
}

/// Select at most `k` of `candidates` (identified by index `0..n`)
/// maximising the CM volume measure, by greedy backward elimination:
/// repeatedly drop the candidate whose removal leaves the largest volume.
///
/// `dist(i, j)` returns the (unsquared) distance between candidates.
/// Ties are broken towards dropping the higher index (deterministic).
/// Returns the selected indices in ascending order.
pub fn select_max_volume(n: usize, k: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Vec<usize> {
    let mut keep: Vec<usize> = (0..n).collect();
    if n <= k {
        return keep;
    }
    // Precompute squared distances once (flat row-major; the values and
    // every use below match the historical Vec<Vec> version bit for
    // bit).
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            d2[i * n + j] = d * d;
            d2[j * n + i] = d * d;
        }
    }
    let mut scratch = Vec::new();
    while keep.len() > k {
        let mut best_drop = 0usize;
        let mut best_vol = f64::NEG_INFINITY;
        // Natural volume scale of the current set, for degeneracy
        // detection: (mean pairwise d²)^(m-1) where m is the subset size.
        let mut mean_d2 = 0.0;
        let mut pairs = 0usize;
        for (a, &i) in keep.iter().enumerate() {
            for &j in keep.iter().skip(a + 1) {
                mean_d2 += d2[i * n + j];
                pairs += 1;
            }
        }
        mean_d2 /= pairs.max(1) as f64;
        let degenerate_floor = 1e-9 * mean_d2.max(1e-300).powi(keep.len() as i32 - 2);
        for drop_pos in 0..keep.len() {
            // The CM matrix of `keep` minus position `drop_pos`,
            // assembled straight into the reused scratch buffer — no
            // per-candidate subset vectors.
            let sub = |p: usize| keep[if p < drop_pos { p } else { p + 1 }];
            let vol = cm_volume_measure_flat(
                keep.len() - 1,
                |i, j| d2[sub(i) * n + sub(j)],
                &mut scratch,
            );
            // `>=` prefers dropping later candidates on ties.
            if vol >= best_vol {
                best_vol = vol;
                best_drop = drop_pos;
            }
        }
        if best_vol <= degenerate_floor {
            // Every k-subset is (numerically) flat — which is exactly the
            // clustering condition's signature, and where CM determinants
            // turn into floating-point noise. Fall back to the dispersion
            // objective so the choice stays deterministic and still
            // prefers spread members.
            let sub: Vec<usize> = keep.clone();
            let chosen = select_max_dispersion(sub.len(), k, |i, j| d2[sub[i] * n + sub[j]].sqrt());
            return chosen.into_iter().map(|i| sub[i]).collect();
        }
        keep.remove(best_drop);
    }
    keep
}

/// Max-dispersion fallback selector: maximise the sum of pairwise
/// distances (greedy backward elimination). Cheaper and monotone; used to
/// cross-check the CM selector in tests and exposed as an ablation knob.
pub fn select_max_dispersion(n: usize, k: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Vec<usize> {
    let mut keep: Vec<usize> = (0..n).collect();
    if n <= k {
        return keep;
    }
    let mut d = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(i, j);
            d[i][j] = v;
            d[j][i] = v;
        }
    }
    // contribution[i] = sum of distances from i to the kept set.
    while keep.len() > k {
        let (drop_pos, _) = keep
            .iter()
            .enumerate()
            .map(|(p, &i)| {
                let contrib: f64 = keep.iter().map(|&j| d[i][j]).sum();
                (p, contrib)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        keep.remove(drop_pos);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d2_from_points(pts: &[(f64, f64)]) -> Vec<Vec<f64>> {
        let n = pts.len();
        let mut d2 = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let dx = pts[i].0 - pts[j].0;
                let dy = pts[i].1 - pts[j].1;
                d2[i][j] = dx * dx + dy * dy;
            }
        }
        d2
    }

    #[test]
    fn triangle_volume_matches_area() {
        // Right triangle with legs 3,4: area 6. CM det for n=3 equals
        // -16·Area² = -16·36 = -576; measure = (-1)^3·det = 576.
        let pts = [(0.0, 0.0), (3.0, 0.0), (0.0, 4.0)];
        let v = cm_volume_measure(&d2_from_points(&pts));
        assert!((v - 576.0).abs() < 1e-6, "measure {v}");
    }

    #[test]
    fn degenerate_sets_have_zero_volume() {
        // Collinear points.
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
        let v = cm_volume_measure(&d2_from_points(&pts));
        assert!(v.abs() < 1e-9, "collinear volume {v}");
        // Duplicated point.
        let pts = [(0.0, 0.0), (0.0, 0.0), (1.0, 1.0)];
        let v = cm_volume_measure(&d2_from_points(&pts));
        assert!(v.abs() < 1e-9, "duplicate volume {v}");
    }

    #[test]
    fn bigger_simplex_bigger_measure() {
        let small = d2_from_points(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let large = d2_from_points(&[(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)]);
        assert!(cm_volume_measure(&large) > cm_volume_measure(&small));
    }

    #[test]
    fn select_keeps_spread_points() {
        // Four corners of a square plus a centre point. k=3: the largest
        // triangle uses corners only (area 50 vs 25 through the centre),
        // so the centre must be dropped. (k=4 would be a degenerate
        // 3-simplex in 2-D — covered by the fallback test below.)
        let pts = [
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 10.0),
            (10.0, 10.0),
            (5.0, 5.0),
        ];
        let dist = |i: usize, j: usize| {
            let dx: f64 = pts[i].0 - pts[j].0;
            let dy: f64 = pts[i].1 - pts[j].1;
            (dx * dx + dy * dy).sqrt()
        };
        let sel = select_max_volume(5, 3, dist);
        assert!(!sel.contains(&4), "centre point must be dropped: {sel:?}");
        assert_eq!(sel.len(), 3);
        let sel2 = select_max_dispersion(5, 4, dist);
        assert_eq!(sel2, vec![0, 1, 2, 3], "dispersion drops the centre");
    }

    #[test]
    fn degenerate_selection_falls_back_to_dispersion() {
        // 5 points in 2-D, k=4: every 4-subset is volume-zero, so the CM
        // route is numerically meaningless; the fallback must pick the
        // dispersion answer (drop the centre) rather than float noise.
        let pts = [
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 10.0),
            (10.0, 10.0),
            (5.0, 5.0),
        ];
        let dist = |i: usize, j: usize| {
            let dx: f64 = pts[i].0 - pts[j].0;
            let dy: f64 = pts[i].1 - pts[j].1;
            (dx * dx + dy * dy).sqrt()
        };
        let sel = select_max_volume(5, 4, dist);
        assert_eq!(sel, vec![0, 1, 2, 3], "fallback must drop the centre");
    }

    #[test]
    fn select_with_few_candidates_is_identity() {
        let sel = select_max_volume(3, 16, |_, _| 1.0);
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn clustering_makes_selection_arbitrary() {
        // All candidates pairwise-equidistant (the cluster condition):
        // every subset has the same volume, so selection degenerates to
        // tie-breaking — the paper's point that "hypervolume maximisation
        // does not help here".
        let sel = select_max_volume(8, 4, |_, _| 10.0);
        assert_eq!(sel.len(), 4);
        // With ties broken towards dropping high indices, the low indices
        // survive — i.e. nothing about the metric informed the choice.
        assert_eq!(sel, vec![0, 1, 2, 3]);
    }

    proptest::proptest! {
        /// The measure is permutation-invariant and non-negative for
        /// points from a genuine Euclidean embedding — up to the LU
        /// determinant's numerical noise, whose natural scale is the
        /// volume magnitude `(mean d²)^(n-1)` (degenerate configurations
        /// produce pure noise of that scale, so tolerances are relative
        /// to it).
        #[test]
        fn prop_euclidean_nonnegative(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..7),
        ) {
            let d2 = d2_from_points(&pts);
            let n = pts.len();
            let mut mean_d2 = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    mean_d2 += d2[i][j];
                }
            }
            mean_d2 /= (n * (n - 1) / 2).max(1) as f64;
            let mag = mean_d2.max(1.0).powi(n as i32 - 1);
            let v = cm_volume_measure(&d2);
            proptest::prop_assert!(v > -1e-6 * mag, "negative volume {v} (mag {mag})");
            let mut rev = pts.clone();
            rev.reverse();
            let vr = cm_volume_measure(&d2_from_points(&rev));
            proptest::prop_assert!(
                (v - vr).abs() < 1e-6 * mag,
                "permutation changed measure: {v} vs {vr} (mag {mag})"
            );
        }

        /// Selection always returns exactly k distinct, valid indices.
        #[test]
        fn prop_selection_size(n in 1usize..12, k in 1usize..12) {
            let sel = select_max_volume(n, k, |i, j| ((i + 1) * (j + 2)) as f64);
            proptest::prop_assert_eq!(sel.len(), n.min(k));
            let mut s = sel.clone();
            s.dedup();
            proptest::prop_assert_eq!(s.len(), sel.len());
            proptest::prop_assert!(sel.iter().all(|&i| i < n));
        }
    }
}
