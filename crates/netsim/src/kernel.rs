//! The discrete-event engine.
//!
//! Design notes:
//!
//! * **Determinism.** Events at equal timestamps are processed in
//!   insertion order (a monotone sequence number breaks heap ties), and
//!   all randomness flows from the seed passed to [`Sim::new`]. Two runs
//!   with the same seed produce identical traces.
//! * **Borrowing.** A node handler gets `&mut self` plus a [`Ctx`] that
//!   *buffers* its actions (sends, timers); the engine applies them after
//!   the handler returns. This avoids aliasing the node store and keeps
//!   handlers panic-safe with respect to queue corruption.
//! * **No global time limit surprises.** [`Sim::run_until`] stops the
//!   clock exactly at the horizon; events beyond it stay queued, so a
//!   subsequent `run_until` continues seamlessly.

use crate::link::LinkModel;
use np_util::Micros;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time: microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Advance by a latency.
    #[inline]
    pub fn after(self, d: Micros) -> SimTime {
        SimTime(self.0.saturating_add(d.as_us()))
    }

    /// Elapsed time since `earlier` (saturating).
    #[inline]
    pub fn since(self, earlier: SimTime) -> Micros {
        Micros(self.0.saturating_sub(earlier.0))
    }

    /// As fractional milliseconds (presentation).
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

/// Address of a node in a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A simulated process.
///
/// `M` is the protocol's message type. Handlers receive a [`Ctx`] through
/// which they read the clock, send messages and arm timers.
pub trait Node<M> {
    /// Called once when the simulation starts (before any message).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A message has arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeAddr, msg: M);

    /// A timer armed with [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}
}

/// Counters the engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dequeued and dispatched.
    pub events: u64,
    /// Messages accepted by the link model.
    pub messages_sent: u64,
    /// Messages the link model dropped.
    pub messages_dropped: u64,
    /// Timer events fired.
    pub timers_fired: u64,
}

enum Payload<M> {
    Message { from: NodeAddr, msg: M },
    Timer { token: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    to: NodeAddr,
    payload: Payload<M>,
}

/// The per-handler action buffer and environment view.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: NodeAddr,
    rng: &'a mut StdRng,
    outbox: Vec<(NodeAddr, M)>,
    timers: Vec<(Micros, u64)>,
    stopped: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's address.
    pub fn me(&self) -> NodeAddr {
        self.me
    }

    /// The simulation RNG (seeded; shared by all nodes in event order, so
    /// usage is deterministic).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send `msg` to `to`; delivery time is decided by the link model
    /// (messages to self are allowed and take the link's self-delay).
    pub fn send(&mut self, to: NodeAddr, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Arm a timer that fires on this node after `delay` with `token`.
    pub fn set_timer(&mut self, delay: Micros, token: u64) {
        self.timers.push((delay, token));
    }

    /// Ask the engine to stop after this handler returns (used by
    /// terminating protocols; queued events remain for inspection).
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}

/// The simulation engine over a node store, a link model and a clock.
pub struct Sim<M, N: Node<M>, L: LinkModel> {
    nodes: Vec<N>,
    link: L,
    queue: BinaryHeap<Reverse<HeapKey>>,
    events: Vec<Option<Event<M>>>, // arena addressed by HeapKey.slot
    free: Vec<usize>,
    clock: SimTime,
    seq: u64,
    rng: StdRng,
    stats: SimStats,
    started: bool,
    stopped: bool,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: usize,
}

impl<M, N: Node<M>, L: LinkModel> Sim<M, N, L> {
    /// Create an engine over `nodes` with the given link model and seed.
    pub fn new(nodes: Vec<N>, link: L, seed: u64) -> Self {
        Sim {
            nodes,
            link,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            clock: SimTime::ZERO,
            seq: 0,
            rng: np_util::rng::rng_from(seed),
            stats: SimStats::default(),
            started: false,
            stopped: false,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the engine hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Engine counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node (post-run inspection).
    pub fn node(&self, addr: NodeAddr) -> &N {
        &self.nodes[addr.idx()]
    }

    /// Mutable access to a node (test setup).
    pub fn node_mut(&mut self, addr: NodeAddr) -> &mut N {
        &mut self.nodes[addr.idx()]
    }

    /// All node addresses.
    pub fn addrs(&self) -> impl Iterator<Item = NodeAddr> {
        (0..self.nodes.len() as u32).map(NodeAddr)
    }

    /// Inject a message from "outside" (no sender node) at the current
    /// time plus the link delay from `from`.
    pub fn inject(&mut self, from: NodeAddr, to: NodeAddr, msg: M) {
        let delay = self
            .link
            .delay(from, to, &mut self.rng)
            .unwrap_or(Micros::ZERO);
        let at = self.clock.after(delay);
        self.push(Event {
            at,
            seq: 0, // replaced by push
            to,
            payload: Payload::Message { from, msg },
        });
    }

    fn push(&mut self, mut ev: Event<M>) {
        self.seq += 1;
        ev.seq = self.seq;
        let slot = if let Some(s) = self.free.pop() {
            self.events[s] = Some(ev);
            s
        } else {
            self.events.push(Some(ev));
            self.events.len() - 1
        };
        let e = self.events[slot].as_ref().expect("just placed");
        self.queue.push(Reverse(HeapKey {
            at: e.at,
            seq: e.seq,
            slot,
        }));
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let me = NodeAddr(i as u32);
            let mut stopped = self.stopped;
            let mut ctx = Ctx {
                now: self.clock,
                me,
                rng: &mut self.rng,
                outbox: Vec::new(),
                timers: Vec::new(),
                stopped: &mut stopped,
            };
            self.nodes[i].on_start(&mut ctx);
            let (outbox, timers) = (ctx.outbox, ctx.timers);
            self.stopped = stopped;
            self.apply(me, outbox, timers);
        }
    }

    fn apply(&mut self, me: NodeAddr, outbox: Vec<(NodeAddr, M)>, timers: Vec<(Micros, u64)>) {
        for (to, msg) in outbox {
            match self.link.delay(me, to, &mut self.rng) {
                Some(d) => {
                    self.stats.messages_sent += 1;
                    let at = self.clock.after(d);
                    self.push(Event {
                        at,
                        seq: 0,
                        to,
                        payload: Payload::Message { from: me, msg },
                    });
                }
                None => self.stats.messages_dropped += 1,
            }
        }
        for (delay, token) in timers {
            let at = self.clock.after(delay);
            self.push(Event {
                at,
                seq: 0,
                to: me,
                payload: Payload::Timer { token },
            });
        }
    }

    /// Run until the queue drains, the horizon passes, or a node calls
    /// [`Ctx::stop`]. Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while !self.stopped {
            let Some(Reverse(key)) = self.queue.peek() else {
                break;
            };
            if key.at > horizon {
                break;
            }
            let Reverse(key) = self.queue.pop().expect("peeked");
            let ev = self.events[key.slot].take().expect("live event");
            self.free.push(key.slot);
            self.clock = ev.at;
            self.stats.events += 1;
            processed += 1;
            let me = ev.to;
            let mut stopped = self.stopped;
            let mut ctx = Ctx {
                now: self.clock,
                me,
                rng: &mut self.rng,
                outbox: Vec::new(),
                timers: Vec::new(),
                stopped: &mut stopped,
            };
            match ev.payload {
                Payload::Message { from, msg } => {
                    self.nodes[me.idx()].on_message(&mut ctx, from, msg);
                }
                Payload::Timer { token } => {
                    self.stats.timers_fired += 1;
                    self.nodes[me.idx()].on_timer(&mut ctx, token);
                }
            }
            let (outbox, timers) = (ctx.outbox, ctx.timers);
            self.stopped = stopped;
            self.apply(me, outbox, timers);
        }
        // Clamp the clock to the horizon when we stopped because of it —
        // i.e. events remain queued but all lie beyond the horizon. A
        // drained queue leaves the clock at the last processed event.
        if self.clock < horizon
            && !self.queue.is_empty()
            && self.queue.iter().all(|Reverse(k)| k.at > horizon)
        {
            self.clock = horizon;
        }
        processed
    }

    /// Run until the queue is empty (or [`Ctx::stop`]).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// Dismantle the engine and return the node store (post-run analysis).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::ConstLink;

    /// Ping-pong: node 0 sends `n` to 1, which replies `n-1`, until 0.
    struct PingPong {
        peer: NodeAddr,
        initiator: bool,
        last_seen: u64,
        done_at: Option<SimTime>,
    }

    impl Node<u64> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.initiator {
                ctx.send(self.peer, 4);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeAddr, msg: u64) {
            self.last_seen = msg;
            if msg == 0 {
                self.done_at = Some(ctx.now());
            } else {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn pingpong_sim(seed: u64) -> Sim<u64, PingPong, ConstLink> {
        let nodes = vec![
            PingPong {
                peer: NodeAddr(1),
                initiator: true,
                last_seen: u64::MAX,
                done_at: None,
            },
            PingPong {
                peer: NodeAddr(0),
                initiator: false,
                last_seen: u64::MAX,
                done_at: None,
            },
        ];
        Sim::new(nodes, ConstLink(Micros::from_ms(5.0)), seed)
    }

    #[test]
    fn pingpong_terminates_with_correct_clock() {
        let mut sim = pingpong_sim(1);
        sim.run_to_completion();
        // 5 messages (4,3,2,1,0) at 5 ms each.
        assert_eq!(sim.stats().messages_sent, 5);
        assert_eq!(sim.now(), SimTime(25_000));
        let n1 = sim.node(NodeAddr(1));
        assert_eq!(n1.done_at, Some(SimTime(25_000)));
        assert_eq!(n1.last_seen, 0);
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let mut sim = pingpong_sim(1);
        let first = sim.run_until(SimTime(12_000)); // 2 events (5, 10 ms)
        assert_eq!(first, 2);
        assert_eq!(sim.now(), SimTime(12_000), "clock clamps to horizon");
        let rest = sim.run_to_completion();
        assert_eq!(rest, 3);
        assert_eq!(sim.now(), SimTime(25_000));
    }

    /// Timers: a node that reschedules itself 3 times.
    struct Ticker {
        fired: Vec<(SimTime, u64)>,
    }

    impl Node<()> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(Micros::from_ms(1.0), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeAddr, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((ctx.now(), token));
            if token < 3 {
                ctx.set_timer(Micros::from_ms(1.0), token + 1);
            }
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Sim::new(
            vec![Ticker { fired: Vec::new() }],
            ConstLink(Micros::ZERO),
            7,
        );
        sim.run_to_completion();
        let t = &sim.node(NodeAddr(0)).fired;
        assert_eq!(
            t,
            &vec![
                (SimTime(1_000), 1),
                (SimTime(2_000), 2),
                (SimTime(3_000), 3)
            ]
        );
        assert_eq!(sim.stats().timers_fired, 3);
    }

    /// Same-timestamp events must dispatch FIFO.
    struct Recorder {
        seen: Vec<u64>,
    }
    impl Node<u64> for Recorder {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _from: NodeAddr, msg: u64) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn equal_time_events_are_fifo() {
        let mut sim = Sim::new(
            vec![Recorder { seen: Vec::new() }],
            ConstLink(Micros::from_ms(1.0)),
            3,
        );
        for i in 0..10 {
            sim.inject(NodeAddr(0), NodeAddr(0), i);
        }
        sim.run_to_completion();
        assert_eq!(sim.node(NodeAddr(0)).seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = pingpong_sim(99);
        let mut b = pingpong_sim(99);
        a.run_to_completion();
        b.run_to_completion();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.now(), b.now());
    }

    /// ctx.stop() halts the engine immediately.
    struct Stopper;
    impl Node<u64> for Stopper {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeAddr, msg: u64) {
            if msg == 2 {
                ctx.stop();
            }
        }
    }

    #[test]
    fn stop_halts_engine() {
        let mut sim = Sim::new(vec![Stopper], ConstLink(Micros::from_ms(1.0)), 5);
        for i in 0..10 {
            sim.inject(NodeAddr(0), NodeAddr(0), i);
        }
        let n = sim.run_to_completion();
        assert_eq!(n, 3, "events 0,1,2 then stop");
    }
}
