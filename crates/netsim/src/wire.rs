//! Length-prefixed wire framing.
//!
//! The protocol crates define typed message enums; this module gives them
//! a real byte representation — a `u32` big-endian length prefix followed
//! by the payload — plus the incremental decoder a TCP-style byte stream
//! needs. Protocol crates implement [`WireEncode`]/[`WireDecode`] for
//! their messages and round-trip them in tests, which catches the classic
//! framing bugs (short reads, coalesced frames) that a pure-enum simulator
//! would never exercise.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum frame payload accepted by the decoder (1 MiB). Real stacks
/// bound this to survive corrupt length prefixes; so do we.
pub const MAX_FRAME: usize = 1 << 20;

/// Types that can serialise themselves onto a buffer.
pub trait WireEncode {
    fn encode(&self, buf: &mut BytesMut);
}

/// Types that can deserialise themselves from a complete payload.
pub trait WireDecode: Sized {
    /// Decode from a full frame payload. `None` on malformed input.
    fn decode(payload: &mut Bytes) -> Option<Self>;
}

/// Frame a message: length prefix + payload.
pub fn encode_frame<M: WireEncode>(msg: &M) -> Bytes {
    let mut payload = BytesMut::new();
    msg.encode(&mut payload);
    assert!(payload.len() <= MAX_FRAME, "oversized frame");
    let mut out = BytesMut::with_capacity(4 + payload.len());
    out.put_u32(payload.len() as u32);
    out.extend_from_slice(&payload);
    out.freeze()
}

/// Error states of the stream decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Declared length exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// The payload failed to parse as `M`.
    Malformed,
}

/// An incremental frame decoder over a byte stream.
///
/// Feed arbitrary chunks with [`Decoder::extend`]; pull complete messages
/// with [`Decoder::next`]. Handles frames split across chunks and many
/// frames in one chunk.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append received bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered (undecoded).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete message.
    ///
    /// `Ok(None)` means "need more bytes". Errors leave the decoder in a
    /// poisoned-but-recoverable state: the bad frame is consumed.
    pub fn next<M: WireDecode>(&mut self) -> Result<Option<M>, DecodeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            // Consume the prefix so the caller can resynchronise/close.
            self.buf.advance(4);
            return Err(DecodeError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let mut payload = self.buf.split_to(len).freeze();
        match M::decode(&mut payload) {
            Some(m) => Ok(Some(m)),
            None => Err(DecodeError::Malformed),
        }
    }
}

// --- small codec helpers used by the protocol crates ---

/// Put a length-prefixed byte string.
pub fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u16(b.len() as u16);
    buf.put_slice(b);
}

/// Get a length-prefixed byte string.
pub fn get_bytes(payload: &mut Bytes) -> Option<Vec<u8>> {
    if payload.remaining() < 2 {
        return None;
    }
    let len = payload.get_u16() as usize;
    if payload.remaining() < len {
        return None;
    }
    let mut v = vec![0u8; len];
    payload.copy_to_slice(&mut v);
    Some(v)
}

/// Get a `u32`, checking availability.
pub fn get_u32(payload: &mut Bytes) -> Option<u32> {
    if payload.remaining() < 4 {
        None
    } else {
        Some(payload.get_u32())
    }
}

/// Get a `u64`, checking availability.
pub fn get_u64(payload: &mut Bytes) -> Option<u64> {
    if payload.remaining() < 8 {
        None
    } else {
        Some(payload.get_u64())
    }
}

/// Get a single byte, checking availability.
pub fn get_u8(payload: &mut Bytes) -> Option<u8> {
    if payload.remaining() < 1 {
        None
    } else {
        Some(payload.get_u8())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone)]
    struct Probe {
        id: u64,
        addr: u32,
        note: Vec<u8>,
    }

    impl WireEncode for Probe {
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u64(self.id);
            buf.put_u32(self.addr);
            put_bytes(buf, &self.note);
        }
    }

    impl WireDecode for Probe {
        fn decode(payload: &mut Bytes) -> Option<Self> {
            let id = get_u64(payload)?;
            let addr = get_u32(payload)?;
            let note = get_bytes(payload)?;
            Some(Probe { id, addr, note })
        }
    }

    fn sample(i: u64) -> Probe {
        Probe {
            id: i,
            addr: (i * 7) as u32,
            note: format!("probe-{i}").into_bytes(),
        }
    }

    #[test]
    fn roundtrip_single_frame() {
        let msg = sample(42);
        let frame = encode_frame(&msg);
        let mut dec = Decoder::new();
        dec.extend(&frame);
        let got: Probe = dec.next().expect("no error").expect("complete");
        assert_eq!(got, msg);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn split_frame_needs_more_bytes() {
        let frame = encode_frame(&sample(1));
        let mut dec = Decoder::new();
        dec.extend(&frame[..3]); // not even the length prefix
        assert_eq!(dec.next::<Probe>().expect("no error"), None);
        dec.extend(&frame[3..7]); // prefix + 3 payload bytes
        assert_eq!(dec.next::<Probe>().expect("no error"), None);
        dec.extend(&frame[7..]);
        assert_eq!(dec.next::<Probe>().expect("no error"), Some(sample(1)));
    }

    #[test]
    fn coalesced_frames_all_decode() {
        let mut stream = Vec::new();
        for i in 0..5 {
            stream.extend_from_slice(&encode_frame(&sample(i)));
        }
        let mut dec = Decoder::new();
        dec.extend(&stream);
        for i in 0..5 {
            assert_eq!(dec.next::<Probe>().expect("ok"), Some(sample(i)));
        }
        assert_eq!(dec.next::<Probe>().expect("ok"), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = Decoder::new();
        let mut bad = BytesMut::new();
        bad.put_u32((MAX_FRAME + 1) as u32);
        dec.extend(&bad);
        assert_eq!(
            dec.next::<Probe>(),
            Err(DecodeError::FrameTooLarge(MAX_FRAME + 1))
        );
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut dec = Decoder::new();
        let mut bad = BytesMut::new();
        bad.put_u32(2);
        bad.put_u16(7); // too short for Probe
        dec.extend(&bad);
        assert_eq!(dec.next::<Probe>(), Err(DecodeError::Malformed));
    }

    proptest::proptest! {
        /// Any chunking of any message sequence decodes to the sequence.
        #[test]
        fn prop_chunking_invariant(
            ids in proptest::collection::vec(0u64..1000, 1..12),
            cuts in proptest::collection::vec(1usize..17, 0..40),
        ) {
            let msgs: Vec<Probe> = ids.iter().map(|&i| sample(i)).collect();
            let mut stream = Vec::new();
            for m in &msgs {
                stream.extend_from_slice(&encode_frame(m));
            }
            let mut dec = Decoder::new();
            let mut got = Vec::new();
            let mut pos = 0;
            let mut cut_iter = cuts.into_iter();
            while pos < stream.len() {
                let step = cut_iter.next().unwrap_or(stream.len());
                let end = (pos + step).min(stream.len());
                dec.extend(&stream[pos..end]);
                pos = end;
                while let Some(m) = dec.next::<Probe>().expect("well-formed") {
                    got.push(m);
                }
            }
            proptest::prop_assert_eq!(got, msgs);
        }
    }
}
