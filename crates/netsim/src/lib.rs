//! # np-netsim
//!
//! A small discrete-event network simulation kernel.
//!
//! The paper's experiments are *query-level* simulations (latencies come
//! from a matrix, probes are instantaneous lookups). That abstraction is
//! fine for accuracy numbers, but a reproduction that claims to be a
//! system should also run its protocols message-by-message: queries take
//! time, probes overlap, timers fire, packets drop. This crate provides
//! the kernel for that mode:
//!
//! * [`SimTime`] — a virtual clock in microseconds,
//! * [`Node`] — the process trait (`on_start` / `on_message` / `on_timer`),
//! * [`Sim`] — the engine: a binary-heap event queue with deterministic
//!   FIFO tie-breaking, per-run RNG, and message/drop accounting,
//! * [`link`] — pluggable link models: constant, function-backed (e.g. a
//!   latency matrix), plus [`link::Lossy`] and [`link::Jittered`]
//!   decorators in the spirit of smoltcp's fault injection, and the
//!   deterministic fault pair [`link::SeededLoss`] (per-link seeded
//!   drop pattern, independent of global message order) and
//!   [`link::TimeoutLink`] (slow deliveries become drops),
//! * [`wire`] — length-prefixed frame encoding over `bytes`, used by the
//!   protocol crates to round-trip their messages as real byte frames.
//!
//! The event-driven Meridian (in `np-meridian`) and the Chord maintenance
//! loop (in `np-dht`) are `Node` implementations on this kernel.

pub mod kernel;
pub mod link;
pub mod wire;

pub use kernel::{Ctx, Node, NodeAddr, Sim, SimStats, SimTime};
pub use link::LinkModel;
