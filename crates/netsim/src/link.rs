//! Link models: who can talk to whom, how slowly, and how lossily.
//!
//! A [`LinkModel`] maps a `(from, to)` pair to a one-way delay — or `None`
//! to drop the message. Decorators add jitter and loss in the spirit of
//! smoltcp's fault-injection options, so protocol tests can shake their
//! implementations without touching protocol code.

use crate::kernel::NodeAddr;
use np_util::Micros;
use rand::rngs::StdRng;
use rand::Rng;

/// One-way delivery model.
pub trait LinkModel {
    /// Delay for a message `from -> to`, or `None` to drop it.
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros>;
}

/// Every message takes the same one-way delay.
#[derive(Debug, Clone, Copy)]
pub struct ConstLink(pub Micros);

impl LinkModel for ConstLink {
    fn delay(&self, _from: NodeAddr, _to: NodeAddr, _rng: &mut StdRng) -> Option<Micros> {
        Some(self.0)
    }
}

/// Delay computed by a function — typically half the RTT from a latency
/// matrix: `FnLink::new(move |a, b| matrix.rtt(a, b) / 2)`.
pub struct FnLink<F: Fn(NodeAddr, NodeAddr) -> Micros>(F);

impl<F: Fn(NodeAddr, NodeAddr) -> Micros> FnLink<F> {
    pub fn new(f: F) -> Self {
        FnLink(f)
    }
}

impl<F: Fn(NodeAddr, NodeAddr) -> Micros> LinkModel for FnLink<F> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, _rng: &mut StdRng) -> Option<Micros> {
        Some((self.0)(from, to))
    }
}

/// Adds multiplicative uniform jitter `[1-j, 1+j]` to an inner model.
pub struct Jittered<L: LinkModel> {
    inner: L,
    jitter: f64,
}

impl<L: LinkModel> Jittered<L> {
    /// `jitter` is the half-width, e.g. 0.05 for ±5 %.
    pub fn new(inner: L, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        Jittered { inner, jitter }
    }
}

impl<L: LinkModel> LinkModel for Jittered<L> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros> {
        let base = self.inner.delay(from, to, rng)?;
        let f = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        Some(base.scale(f))
    }
}

/// Drops each message independently with probability `p`.
pub struct Lossy<L: LinkModel> {
    inner: L,
    p: f64,
}

impl<L: LinkModel> Lossy<L> {
    pub fn new(inner: L, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability");
        Lossy { inner, p }
    }
}

impl<L: LinkModel> LinkModel for Lossy<L> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros> {
        if rng.gen::<f64>() < self.p {
            None
        } else {
            self.inner.delay(from, to, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_util::rng::rng_from;

    #[test]
    fn const_link_is_constant() {
        let l = ConstLink(Micros::from_ms(3.0));
        let mut rng = rng_from(1);
        assert_eq!(
            l.delay(NodeAddr(0), NodeAddr(1), &mut rng),
            Some(Micros::from_ms(3.0))
        );
    }

    #[test]
    fn fn_link_uses_function() {
        let l = FnLink::new(|a: NodeAddr, b: NodeAddr| Micros((a.0 + b.0) as u64 * 100));
        let mut rng = rng_from(2);
        assert_eq!(
            l.delay(NodeAddr(2), NodeAddr(3), &mut rng),
            Some(Micros(500))
        );
    }

    #[test]
    fn jitter_stays_in_band() {
        let l = Jittered::new(ConstLink(Micros::from_ms(10.0)), 0.05);
        let mut rng = rng_from(3);
        for _ in 0..1000 {
            let d = l
                .delay(NodeAddr(0), NodeAddr(1), &mut rng)
                .expect("delivered")
                .as_us();
            assert!((9_500..=10_500).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn lossy_drops_about_p() {
        let l = Lossy::new(ConstLink(Micros::from_ms(1.0)), 0.3);
        let mut rng = rng_from(4);
        let dropped = (0..10_000)
            .filter(|_| l.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none())
            .count();
        assert!((2_700..=3_300).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn lossy_zero_and_one() {
        let mut rng = rng_from(5);
        let never = Lossy::new(ConstLink(Micros(1)), 0.0);
        assert!(never.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_some());
        let always = Lossy::new(ConstLink(Micros(1)), 1.0);
        assert!(always.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none());
    }
}
