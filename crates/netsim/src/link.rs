//! Link models: who can talk to whom, how slowly, and how lossily.
//!
//! A [`LinkModel`] maps a `(from, to)` pair to a one-way delay — or `None`
//! to drop the message. Decorators add jitter and loss in the spirit of
//! smoltcp's fault-injection options, so protocol tests can shake their
//! implementations without touching protocol code.

use crate::kernel::NodeAddr;
use np_util::Micros;
use rand::rngs::StdRng;
use rand::Rng;

/// One-way delivery model.
pub trait LinkModel {
    /// Delay for a message `from -> to`, or `None` to drop it.
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros>;
}

/// Every message takes the same one-way delay.
#[derive(Debug, Clone, Copy)]
pub struct ConstLink(pub Micros);

impl LinkModel for ConstLink {
    fn delay(&self, _from: NodeAddr, _to: NodeAddr, _rng: &mut StdRng) -> Option<Micros> {
        Some(self.0)
    }
}

/// Delay computed by a function — typically half the RTT from a latency
/// matrix: `FnLink::new(move |a, b| matrix.rtt(a, b) / 2)`.
pub struct FnLink<F: Fn(NodeAddr, NodeAddr) -> Micros>(F);

impl<F: Fn(NodeAddr, NodeAddr) -> Micros> FnLink<F> {
    pub fn new(f: F) -> Self {
        FnLink(f)
    }
}

impl<F: Fn(NodeAddr, NodeAddr) -> Micros> LinkModel for FnLink<F> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, _rng: &mut StdRng) -> Option<Micros> {
        Some((self.0)(from, to))
    }
}

/// Adds multiplicative uniform jitter `[1-j, 1+j]` to an inner model.
pub struct Jittered<L: LinkModel> {
    inner: L,
    jitter: f64,
}

impl<L: LinkModel> Jittered<L> {
    /// `jitter` is the half-width, e.g. 0.05 for ±5 %.
    pub fn new(inner: L, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        Jittered { inner, jitter }
    }
}

impl<L: LinkModel> LinkModel for Jittered<L> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros> {
        let base = self.inner.delay(from, to, rng)?;
        let f = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        Some(base.scale(f))
    }
}

/// Drops each message independently with probability `p`.
pub struct Lossy<L: LinkModel> {
    inner: L,
    p: f64,
}

impl<L: LinkModel> Lossy<L> {
    pub fn new(inner: L, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability");
        Lossy { inner, p }
    }
}

impl<L: LinkModel> LinkModel for Lossy<L> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros> {
        if rng.gen::<f64>() < self.p {
            None
        } else {
            self.inner.delay(from, to, rng)
        }
    }
}

/// Drops messages deterministically: message `k` on link `(from, to)`
/// is lost iff a pure hash of `(seed, from, to, k)` falls below `p`.
///
/// Unlike [`Lossy`], which burns the simulation RNG and therefore
/// entangles every link's fate with global message order, this
/// decorator keeps one counter per directed link — the drop pattern a
/// link sees depends only on its own traffic order, never on what other
/// links carried in between. Rebuilding the decorator with the same
/// seed replays the same losses.
pub struct SeededLoss<L: LinkModel> {
    inner: L,
    p: f64,
    seed: u64,
    sent: std::cell::RefCell<std::collections::HashMap<(NodeAddr, NodeAddr), u64>>,
}

/// Seed tag isolating link loss from every other stream.
const LINK_LOSS_TAG: u64 = 0x4C4E_4B4C; // "LNKL"

impl<L: LinkModel> SeededLoss<L> {
    pub fn new(inner: L, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability");
        SeededLoss {
            inner,
            p,
            seed,
            sent: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// Whether message `k` on `(from, to)` is dropped — pure, callable
    /// without sending anything (the tests replay history with it).
    pub fn drops(&self, from: NodeAddr, to: NodeAddr, k: u64) -> bool {
        use np_util::rng::{splitmix64, sub_seed};
        let link = (u64::from(from.0) << 32) | u64::from(to.0);
        let h = splitmix64(sub_seed(self.seed, LINK_LOSS_TAG) ^ splitmix64(link) ^ k);
        (h >> 11) as f64 / ((1u64 << 53) as f64) < self.p
    }
}

impl<L: LinkModel> LinkModel for SeededLoss<L> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros> {
        let k = {
            let mut sent = self.sent.borrow_mut();
            let k = sent.entry((from, to)).or_insert(0);
            let now = *k;
            *k += 1;
            now
        };
        if self.drops(from, to, k) {
            None
        } else {
            self.inner.delay(from, to, rng)
        }
    }
}

/// Turns deliveries slower than `limit` into drops — the receiver's
/// timeout fires before the message lands, which to a probe tool is
/// indistinguishable from loss.
pub struct TimeoutLink<L: LinkModel> {
    inner: L,
    limit: Micros,
}

impl<L: LinkModel> TimeoutLink<L> {
    pub fn new(inner: L, limit: Micros) -> Self {
        TimeoutLink { inner, limit }
    }
}

impl<L: LinkModel> LinkModel for TimeoutLink<L> {
    fn delay(&self, from: NodeAddr, to: NodeAddr, rng: &mut StdRng) -> Option<Micros> {
        let d = self.inner.delay(from, to, rng)?;
        if d > self.limit {
            None
        } else {
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_util::rng::rng_from;

    #[test]
    fn const_link_is_constant() {
        let l = ConstLink(Micros::from_ms(3.0));
        let mut rng = rng_from(1);
        assert_eq!(
            l.delay(NodeAddr(0), NodeAddr(1), &mut rng),
            Some(Micros::from_ms(3.0))
        );
    }

    #[test]
    fn fn_link_uses_function() {
        let l = FnLink::new(|a: NodeAddr, b: NodeAddr| Micros((a.0 + b.0) as u64 * 100));
        let mut rng = rng_from(2);
        assert_eq!(
            l.delay(NodeAddr(2), NodeAddr(3), &mut rng),
            Some(Micros(500))
        );
    }

    #[test]
    fn jitter_stays_in_band() {
        let l = Jittered::new(ConstLink(Micros::from_ms(10.0)), 0.05);
        let mut rng = rng_from(3);
        for _ in 0..1000 {
            let d = l
                .delay(NodeAddr(0), NodeAddr(1), &mut rng)
                .expect("delivered")
                .as_us();
            assert!((9_500..=10_500).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn lossy_drops_about_p() {
        let l = Lossy::new(ConstLink(Micros::from_ms(1.0)), 0.3);
        let mut rng = rng_from(4);
        let dropped = (0..10_000)
            .filter(|_| l.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none())
            .count();
        assert!((2_700..=3_300).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn lossy_zero_and_one() {
        let mut rng = rng_from(5);
        let never = Lossy::new(ConstLink(Micros(1)), 0.0);
        assert!(never.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_some());
        let always = Lossy::new(ConstLink(Micros(1)), 1.0);
        assert!(always.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none());
    }

    #[test]
    fn seeded_loss_replays_bit_identically_and_ignores_other_links() {
        let mut rng = rng_from(6);
        let l = SeededLoss::new(ConstLink(Micros(1)), 0.3, 42);
        let a: Vec<bool> = (0..200)
            .map(|_| l.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none())
            .collect();
        assert!(a.iter().any(|&d| d) && !a.iter().all(|&d| d), "p=0.3 drops some, not all");
        // Same seed, but this time interleave heavy traffic on an
        // unrelated link: (0, 1) must see the exact same fate sequence.
        let l2 = SeededLoss::new(ConstLink(Micros(1)), 0.3, 42);
        let b: Vec<bool> = (0..200)
            .map(|i| {
                for _ in 0..(i % 3) {
                    let _ = l2.delay(NodeAddr(7), NodeAddr(8), &mut rng);
                }
                l2.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none()
            })
            .collect();
        assert_eq!(a, b);
        // And the pure predicate replays history without sending.
        let c: Vec<bool> = (0..200).map(|k| l.drops(NodeAddr(0), NodeAddr(1), k)).collect();
        assert_eq!(a, c);
        // A different seed draws a different pattern.
        let l3 = SeededLoss::new(ConstLink(Micros(1)), 0.3, 43);
        let d: Vec<bool> = (0..200)
            .map(|_| l3.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none())
            .collect();
        assert_ne!(a, d);
    }

    #[test]
    fn seeded_loss_rate_is_about_p() {
        let mut rng = rng_from(7);
        let l = SeededLoss::new(ConstLink(Micros(1)), 0.3, 9);
        let dropped = (0..10_000)
            .filter(|_| l.delay(NodeAddr(0), NodeAddr(1), &mut rng).is_none())
            .count();
        assert!((2_700..=3_300).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn timeout_turns_slow_deliveries_into_drops() {
        let mut rng = rng_from(8);
        let l = TimeoutLink::new(
            FnLink::new(|a: NodeAddr, b: NodeAddr| Micros((a.0 + b.0) as u64 * 100)),
            Micros(400),
        );
        assert_eq!(l.delay(NodeAddr(1), NodeAddr(2), &mut rng), Some(Micros(300)));
        assert_eq!(l.delay(NodeAddr(1), NodeAddr(3), &mut rng), Some(Micros(400)));
        assert_eq!(l.delay(NodeAddr(4), NodeAddr(5), &mut rng), None);
    }
}
