//! Vendored stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The experiment harness needs exactly four things from a randomness
//! crate:
//!
//! * a seedable, statistically strong generator ([`rngs::StdRng`],
//!   implemented as ChaCha12 — the same core the real `rand` uses),
//! * uniform typed draws ([`Rng::gen`]),
//! * uniform range draws ([`Rng::gen_range`], Lemire rejection sampling
//!   for integers so there is no modulo bias),
//! * slice helpers ([`seq::SliceRandom::choose`] /
//!   [`seq::SliceRandom::shuffle`], Fisher–Yates).
//!
//! Everything is implemented here, dependency-free. Because this crate
//! is vendored *inside* the repository, the byte streams it produces are
//! frozen: no upstream release can ever silently change an experiment's
//! random schedule. That property is load-bearing for the parallel
//! runner's determinism contract (see `np-util::parallel`).

pub mod rngs;
pub mod seq;

mod chacha;
mod uniform;

pub use uniform::{SampleRange, SampleUniform, StandardSample};

/// Low-level generator interface: a source of uniform 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level draws, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T`: full range for integers, `[0, 1)` for
    /// floats.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to the full seed width with
    /// SplitMix64 (one independent output word per 8 seed bytes).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x), "out of unit interval: {x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
        for _ in 0..1_000 {
            let x = r.gen_range(3..=5u32);
            assert!((3..=5).contains(&x));
        }
        for _ in 0..1_000 {
            let x = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        // Modulo-bias smoke test: 3 buckets over a range that does not
        // divide 2^64.
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
