//! ChaCha12 block generation (Bernstein's ChaCha with 12 rounds — the
//! variant the real `rand`'s `StdRng` settled on as the speed/quality
//! sweet spot). Only what a PRNG needs: key + 64-bit block counter, no
//! nonce/stream support, output consumed as a word stream.

/// One ChaCha block: 16 output words from 16 state words.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]; // "expand 32-byte k"
const ROUNDS: usize = 12;

/// The raw ChaCha12 core: 32-byte key, 64-bit block counter.
#[derive(Clone, Debug)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

impl ChaCha12Core {
    pub fn new(seed: [u8; 32]) -> ChaCha12Core {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Core { key, counter: 0 }
    }

    /// Produce the next 16-word block and advance the counter.
    pub fn next_block(&mut self) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(input) {
            *s = s.wrapping_add(i);
        }
        self.counter = self.counter.wrapping_add(1);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_differ_and_are_reproducible() {
        let mut a = ChaCha12Core::new([1; 32]);
        let mut b = ChaCha12Core::new([1; 32]);
        let a1 = a.next_block();
        let a2 = a.next_block();
        assert_ne!(a1, a2, "consecutive blocks must differ");
        assert_eq!(a1, b.next_block(), "same key, same block");
        let mut c = ChaCha12Core::new([2; 32]);
        assert_ne!(a2, c.next_block(), "different key, different block");
    }

    #[test]
    fn avalanche_over_key_bits() {
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k2[0] = 1;
        let b1 = ChaCha12Core::new(k1).next_block();
        let b2 = ChaCha12Core::new(k2).next_block();
        let flipped: u32 = b1.iter().zip(b2).map(|(x, y)| (x ^ y).count_ones()).sum();
        // 512 output bits; a single key-bit flip should change ~half.
        assert!((150..=362).contains(&flipped), "poor diffusion: {flipped}");
        k1[0] = 1;
        assert_eq!(ChaCha12Core::new(k1).next_block(), b2);
    }
}
