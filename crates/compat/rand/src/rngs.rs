//! Named generator types.

use crate::chacha::ChaCha12Core;
use crate::{RngCore, SeedableRng};

/// The workspace-standard generator: ChaCha12 with a 64-bit block
/// counter, buffered one block (16 words) at a time.
///
/// Mirrors the real `rand::rngs::StdRng` in spirit (same core cipher);
/// the exact output stream is defined by *this* vendored implementation
/// and is frozen with the repository.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: ChaCha12Core,
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill".
    idx: usize,
}

impl StdRng {
    #[inline]
    fn refill(&mut self) {
        self.buf = self.core.next_block();
        self.idx = 0;
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Low word first, matching the little-endian word stream.
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        StdRng {
            core: ChaCha12Core::new(seed),
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_stream_crosses_block_boundaries() {
        let mut r = StdRng::seed_from_u64(11);
        // 40 u32s spans three 16-word blocks; just exercise the refill
        // path and check the stream stays reproducible.
        let a: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        let mut r2 = StdRng::seed_from_u64(11);
        let b: Vec<u32> = (0..40).map(|_| r2.next_u32()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn u64_is_two_u32s() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let x = a.next_u64();
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(x, lo | (hi << 32));
    }
}
