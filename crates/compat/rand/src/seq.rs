//! Slice helpers: random element choice and Fisher–Yates shuffling.

use crate::Rng;

/// Random-access helpers on slices.
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffle in place (Fisher–Yates, `len - 1` range draws).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// `amount` distinct elements in selection order (partial
    /// Fisher–Yates over an index table). Fewer if the slice is short.
    fn choose_multiple<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
        let amount = amount.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| &self[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_from_empty_is_none() {
        let mut r = StdRng::seed_from_u64(1);
        let v: [u32; 0] = [];
        assert_eq!(v.choose(&mut r), None);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut r = StdRng::seed_from_u64(3);
        let v: Vec<u32> = (0..50).collect();
        let picked = v.choose_multiple(&mut r, 10);
        assert_eq!(picked.len(), 10);
        let mut vals: Vec<u32> = picked.into_iter().copied().collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 10, "duplicates in choose_multiple");
        assert_eq!(v.choose_multiple(&mut r, 99).len(), 50);
    }

    #[test]
    fn choose_is_uniform_ish() {
        let mut r = StdRng::seed_from_u64(4);
        let v = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[*v.choose(&mut r).expect("non-empty")] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }
}
