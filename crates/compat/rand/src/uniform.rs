//! Typed uniform sampling: full-width draws, and range draws without
//! modulo bias (Lemire's multiply-shift rejection method).

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// Types drawable by [`Rng::gen`]: full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
pub trait StandardSample: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )+};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for u128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa precision.
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types supporting biased-free uniform draws over a sub-range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw in `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw in `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Lemire multiply-shift: uniform in `[0, range)` for `range >= 1`,
/// rejection-sampled so every value is exactly equally likely.
#[inline]
fn lemire_u64<R: Rng + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range >= 1);
    // Threshold below which the low half of x*range is non-uniform.
    let threshold = range.wrapping_neg() % range;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (range as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + lemire_u64(rng, (hi - lo) as u64) as $t
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t; // full 64-bit range
                }
                lo + lemire_u64(rng, width + 1) as $t
            }
        }
    )+};
}

uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty as $u:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let width = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(lemire_u64(rng, width) as $t)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let width = (hi as $u).wrapping_sub(lo as $u) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(lemire_u64(rng, width + 1) as $t)
            }
        }
    )+};
}

uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! uniform_float {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u: $t = StandardSample::sample_standard(rng); // [0, 1)
                let v = lo + (hi - lo) * u;
                // Guard the (rounding-only) case v == hi so the
                // half-open contract holds exactly.
                if v < hi { v } else { lo }
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u: $t = StandardSample::sample_standard(rng);
                (lo + (hi - lo) * u).min(hi)
            }
        }
    )+};
}

uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match r.gen_range(0..=3u8) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn signed_ranges_work() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let x = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn float_half_open_excludes_hi() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.gen_range(5..5u32);
    }
}
