//! Full-range numeric strategies (`proptest::num::u64::ANY`, ...).

macro_rules! any_mod {
    ($($mod_name:ident : $t:ty),+ $(,)?) => {$(
        pub mod $mod_name {
            use crate::Strategy;
            use rand::rngs::StdRng;
            use rand::Rng;

            /// Strategy over the type's entire value range.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            impl Strategy for Any {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    // Full-range values shrink toward zero (halving,
                    // then a single step), whatever their sign.
                    crate::int_shrinks!($t, 0, *value)
                }
            }

            pub const ANY: Any = Any;
        }
    )+};
}

any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
