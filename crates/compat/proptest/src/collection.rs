//! Collection strategies: `vec(element, size)`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Size specifications accepted by [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait SizeSpec {
    fn draw(&self, rng: &mut StdRng) -> usize;
}

impl SizeSpec for usize {
    fn draw(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeSpec for Range<usize> {
    fn draw(&self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s of `element`-generated values.
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(strategy, 36)` or `vec(strategy, 1..40)`.
pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}
