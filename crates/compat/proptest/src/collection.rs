//! Collection strategies: `vec(element, size)`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Size specifications accepted by [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait SizeSpec {
    fn draw(&self, rng: &mut StdRng) -> usize;
    /// The smallest legal size — shrinking never truncates below it.
    fn min(&self) -> usize;
}

impl SizeSpec for usize {
    fn draw(&self, _rng: &mut StdRng) -> usize {
        *self
    }
    fn min(&self) -> usize {
        *self
    }
}

impl SizeSpec for Range<usize> {
    fn draw(&self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        rng.gen_range(self.clone())
    }
    fn min(&self) -> usize {
        self.start
    }
}

/// Strategy producing `Vec`s of `element`-generated values.
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }

    /// Truncation first (big cuts: down to the minimal size, then to
    /// half), then one-element removals at every index, then
    /// element-wise shrinks — all respecting the size spec's lower
    /// bound. Candidates are strictly simpler (shorter, or same length
    /// with a strictly shrunk element), so descent terminates.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.size.min();
        let n = value.len();
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        if n > min {
            out.push(value[..min].to_vec());
            let half = min.max(n / 2);
            if half != min && half != n {
                out.push(value[..half].to_vec());
            }
            for i in 0..n {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for (i, e) in value.iter().enumerate() {
            for cand in self.element.shrink(e) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// `vec(strategy, 36)` or `vec(strategy, 1..40)`.
pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}
