//! Vendored mini `proptest`: deterministic property tests without the
//! full shrinking machinery.
//!
//! Supported surface (exactly what this workspace's tests use):
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }`
//! * range strategies (`0u64..10_000`, `1u8..=32`, `-1.0f64..1.0`),
//! * tuple strategies (2- and 3-tuples of strategies),
//! * [`collection::vec`] with a fixed size or a size range,
//! * [`num::u32::ANY`]-style full-range strategies,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Each test runs [`CASES`] generated cases. Inputs derive from a
//! ChaCha12 stream seeded with the test's module path, so failures are
//! reproducible run-over-run and machine-over-machine. On failure the
//! harness panics with the case's concrete inputs (`Debug`); there is
//! no shrinking, which for the small input spaces used here is an
//! acceptable trade for zero dependencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod num;

/// Cases per property test. 64 keeps the heavier world-building
/// properties fast while still exploring the space; bump locally when
/// hunting.
pub const CASES: usize = 64;

/// Max generation attempts per test: rejected cases (`prop_assume!`)
/// retry with fresh draws up to this multiple of [`CASES`].
pub const MAX_REJECT_FACTOR: usize = 20;

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; message describes it.
    Fail(String),
    /// `prop_assume!` filtered this case out; draw another.
    Reject,
}

/// A source of generated values.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Deterministic per-test seed: FNV-1a over the test's identifying
/// string (module path + name), so every test owns an independent,
/// stable stream.
pub fn seed_for(test_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: draw inputs with `gen`, run `case`, panic on
/// failure with the concrete inputs. Called by the `proptest!` macro.
pub fn run_property<V: std::fmt::Debug>(
    test_id: &str,
    gen: impl Fn(&mut StdRng) -> V,
    case: impl Fn(&V) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_id));
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < CASES {
        attempts += 1;
        assert!(
            attempts <= CASES * MAX_REJECT_FACTOR,
            "{test_id}: prop_assume! rejected too many cases \
             ({accepted}/{CASES} accepted after {attempts} attempts)"
        );
        let value = gen(&mut rng);
        match case(&value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_id}: property failed at case {accepted}:\n  {msg}\n  inputs: {value:?}")
            }
        }
    }
}

/// `proptest! { #[test] fn name(x in strategy, ...) { body } }`
///
/// Expands each function to a plain `#[test]` that runs [`CASES`]
/// deterministic cases through [`run_property`].
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let test_id = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property(
                test_id,
                |rng| ($($crate::Strategy::sample(&($strat), rng),)+),
                |values| {
                    #[allow(unused_parens)]
                    let ($($arg,)+) = values.clone();
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )+};
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Filter a case out (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_test_id() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
        assert_eq!(seed_for("x"), seed_for("x"));
    }

    crate::proptest! {
        /// The macro itself works end-to-end with multi-arg patterns.
        #[test]
        fn macro_smoke(a in 0u32..100, (lo, hi) in (0u64..50, 50u64..100)) {
            crate::prop_assert!(a < 100);
            crate::prop_assume!(a != 99); // exercise the reject path
            crate::prop_assert!(lo < hi, "lo {lo} >= hi {hi}");
            crate::prop_assert_eq!(a + 1, 1 + a);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..10, 3..6), w in crate::collection::vec(0u8..10, 4)) {
            crate::prop_assert!((3..6).contains(&v.len()));
            crate::prop_assert_eq!(w.len(), 4);
            crate::prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn any_strategies(x in crate::num::u32::ANY, y in crate::num::u64::ANY) {
            // Nothing to check beyond type + determinism; touch both.
            let _ = (x, y);
            crate::prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        run_property("t", |rng| rng.gen_range(0u32..10), |&v| {
            if v < 100 {
                Err(TestCaseError::Fail("always fails".into()))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    #[should_panic(expected = "rejected too many cases")]
    fn over_rejection_panics() {
        run_property("t2", |_| 0u32, |_| Err(TestCaseError::Reject));
    }
}
