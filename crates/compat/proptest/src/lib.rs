//! Vendored mini `proptest`: deterministic property tests with minimal
//! shrinking.
//!
//! Supported surface (exactly what this workspace's tests use):
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }`
//! * range strategies (`0u64..10_000`, `1u8..=32`, `-1.0f64..1.0`),
//! * tuple strategies (1- to 4-tuples of strategies),
//! * [`collection::vec`] with a fixed size or a size range,
//! * [`num::u32::ANY`]-style full-range strategies,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Each test runs [`CASES`] generated cases. Inputs derive from a
//! ChaCha12 stream seeded with the test's module path, so failures are
//! reproducible run-over-run and machine-over-machine. On failure the
//! harness greedily **shrinks** the failing input — integers halve
//! toward their range start, vectors drop elements and shrink the
//! survivors, tuples shrink one component at a time — re-running the
//! property on each candidate and keeping the simplification while it
//! still fails, then panics with both the minimal and the original
//! inputs. This is real proptest's idea without its value-tree
//! machinery: greedy first-improvement descent, bounded by
//! [`MAX_SHRINK_STEPS`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod num;

/// Cases per property test. 64 keeps the heavier world-building
/// properties fast while still exploring the space; bump locally when
/// hunting.
pub const CASES: usize = 64;

/// Max generation attempts per test: rejected cases (`prop_assume!`)
/// retry with fresh draws up to this multiple of [`CASES`].
pub const MAX_REJECT_FACTOR: usize = 20;

/// Cap on accepted shrink steps. Each accepted step strictly simplifies
/// the input (smaller magnitude or shorter vector), so real descents
/// finish far earlier; the cap is a backstop against a buggy
/// [`Strategy::shrink`] that returns the value itself.
pub const MAX_SHRINK_STEPS: usize = 1_000;

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; message describes it.
    Fail(String),
    /// `prop_assume!` filtered this case out; draw another.
    Reject,
}

/// A source of generated values, with optional shrinking.
pub trait Strategy {
    type Value: std::fmt::Debug + Clone;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first, **excluding `value` itself**. The default — no candidates
    /// — means "already minimal"; the driver stops shrinking there.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Shrink candidates for an integer confined to `lo..`: the range
/// start (simplest legal value), repeated halvings of the distance back
/// to `lo`, and the predecessor. Shared by `Range`, `RangeInclusive`
/// and the full-range `num` strategies (where `lo` is 0).
macro_rules! int_shrinks {
    ($t:ty, $lo:expr, $v:expr) => {{
        let (lo, v): ($t, $t) = ($lo, $v);
        let mut out: Vec<$t> = Vec::new();
        if v != lo {
            out.push(lo);
            let half = lo + (v - lo) / 2;
            if half != lo && half != v {
                out.push(half);
            }
            // One step toward `lo` (for full-range signed strategies
            // `lo` is 0 and `v` may sit below it).
            #[allow(unused_comparisons)]
            let pred = if v > lo { v - 1 } else { v + 1 };
            if pred != lo && pred != half {
                out.push(pred);
            }
        }
        out
    }};
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrinks!($t, self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrinks!($t, *self.start(), *value)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Toward the range start: the start itself, then the
                // midpoint. No predecessor notion for floats.
                let (lo, v) = (self.start, *value);
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    let half = lo + (v - lo) / 2.0;
                    if half != lo && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (*self.start(), *value);
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    let half = lo + (v - lo) / 2.0;
                    if half != lo && half != v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

pub(crate) use int_shrinks;

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
);

/// Deterministic per-test seed: FNV-1a over the test's identifying
/// string (module path + name), so every test owns an independent,
/// stable stream.
pub fn seed_for(test_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Greedy first-improvement descent from a failing `value`: try the
/// strategy's shrink candidates in order, keep the first that still
/// fails, repeat until no candidate fails (local minimum) or
/// [`MAX_SHRINK_STEPS`] accepted steps. Returns the minimal failing
/// value, its failure message, and the accepted step count.
pub fn minimise<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    case: &impl Fn(&S::Value) -> Result<(), TestCaseError>,
) -> (S::Value, String, usize) {
    let mut steps = 0usize;
    'descend: while steps < MAX_SHRINK_STEPS {
        for cand in strategy.shrink(&value) {
            if let Err(TestCaseError::Fail(m)) = case(&cand) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'descend;
            }
        }
        break; // every candidate passed (or was rejected): minimal.
    }
    (value, msg, steps)
}

/// Drive one property: draw inputs from `strategy`, run `case`, and on
/// failure shrink via [`minimise`] before panicking with the minimal
/// and original inputs. Called by the `proptest!` macro.
pub fn run_property<S: Strategy>(
    test_id: &str,
    strategy: S,
    case: impl Fn(&S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_id));
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < CASES {
        attempts += 1;
        assert!(
            attempts <= CASES * MAX_REJECT_FACTOR,
            "{test_id}: prop_assume! rejected too many cases \
             ({accepted}/{CASES} accepted after {attempts} attempts)"
        );
        let value = strategy.sample(&mut rng);
        match case(&value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                let original = value.clone();
                let (minimal, msg, steps) = minimise(&strategy, value, msg, &case);
                panic!(
                    "{test_id}: property failed at case {accepted}:\n  {msg}\n  \
                     inputs: {minimal:?}\n  \
                     (shrunk {steps} steps from {original:?})"
                )
            }
        }
    }
}

/// `proptest! { #[test] fn name(x in strategy, ...) { body } }`
///
/// Expands each function to a plain `#[test]` that runs [`CASES`]
/// deterministic cases through [`run_property`].
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let test_id = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property(
                test_id,
                ($($strat,)+),
                |values| {
                    #[allow(unused_parens)]
                    let ($($arg,)+) = values.clone();
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )+};
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Filter a case out (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_test_id() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
        assert_eq!(seed_for("x"), seed_for("x"));
    }

    crate::proptest! {
        /// The macro itself works end-to-end with multi-arg patterns.
        #[test]
        fn macro_smoke(a in 0u32..100, (lo, hi) in (0u64..50, 50u64..100)) {
            crate::prop_assert!(a < 100);
            crate::prop_assume!(a != 99); // exercise the reject path
            crate::prop_assert!(lo < hi, "lo {lo} >= hi {hi}");
            crate::prop_assert_eq!(a + 1, 1 + a);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..10, 3..6), w in crate::collection::vec(0u8..10, 4)) {
            crate::prop_assert!((3..6).contains(&v.len()));
            crate::prop_assert_eq!(w.len(), 4);
            crate::prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn any_strategies(x in crate::num::u32::ANY, y in crate::num::u64::ANY) {
            // Nothing to check beyond type + determinism; touch both.
            let _ = (x, y);
            crate::prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        run_property("t", (0u32..10,), |&(v,)| {
            if v < 100 {
                Err(TestCaseError::Fail("always fails".into()))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    #[should_panic(expected = "rejected too many cases")]
    fn over_rejection_panics() {
        run_property("t2", (0u32..1,), |_| Err(TestCaseError::Reject));
    }

    // --- shrinking ---

    #[test]
    fn integer_shrinks_halve_toward_the_range_start() {
        let s = 5u64..100;
        let c = s.shrink(&70);
        assert_eq!(c, vec![5, 37, 69], "start, halfway-to-start, pred");
        assert!(s.shrink(&5).is_empty(), "the range start is minimal");
        // Inclusive ranges shrink toward their start too.
        assert_eq!((3u32..=9).shrink(&4), vec![3]);
        // Signed values shrink toward the start, not toward zero.
        assert_eq!((-8i32..8).shrink(&6), vec![-8, -1, 5]);
    }

    #[test]
    fn full_range_integers_shrink_toward_zero() {
        let c = num::u64::ANY.shrink(&1000);
        assert_eq!(c, vec![0, 500, 999]);
        assert!(num::u32::ANY.shrink(&0).is_empty());
        assert_eq!(num::i64::ANY.shrink(&-9), vec![0, -4, -8]);
    }

    #[test]
    fn float_shrinks_step_toward_the_range_start() {
        let c = (0.0f64..8.0).shrink(&6.0);
        assert_eq!(c, vec![0.0, 3.0]);
        assert!((0.0f64..8.0).shrink(&0.0).is_empty());
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0u32..10, 0u32..10);
        let c = s.shrink(&(4, 0));
        // Only the first component can shrink; the second is minimal.
        assert_eq!(c, vec![(0, 0), (2, 0), (3, 0)]);
        assert!(s.shrink(&(0, 0)).is_empty());
    }

    #[test]
    fn minimise_descends_to_the_smallest_failing_input() {
        // "fails iff v >= 10": greedy descent from any failing draw
        // must bottom out at exactly 10.
        let fails_at_10 = |&(v,): &(u64,)| {
            if v >= 10 {
                Err(TestCaseError::Fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = minimise(&(0u64..1000,), (700,), "seed".into(), &fails_at_10);
        assert_eq!(min, (10,));
        assert_eq!(msg, "10 too big");
        assert!(steps > 0 && steps < MAX_SHRINK_STEPS);
    }

    #[test]
    fn minimise_shrinks_vecs_to_the_guilty_element() {
        // "fails iff the vec contains a 7": minimal counterexample is
        // the single-element vec [7], whatever the draw looked like.
        let s = (collection::vec(0u8..10, 0..8),);
        let contains_7 = |(v,): &(Vec<u8>,)| {
            if v.contains(&7) {
                Err(TestCaseError::Fail("has a 7".into()))
            } else {
                Ok(())
            }
        };
        let start = (vec![3u8, 9, 7, 1, 7, 2],);
        let (min, _, _) = minimise(&s, start, "seed".into(), &contains_7);
        assert_eq!(min, (vec![7],));
    }

    #[test]
    fn minimise_leaves_passing_candidates_alone() {
        // A property that fails only at the original value: no shrink
        // candidate reproduces it, so the original is reported.
        let only_42 = |&(v,): &(u32,)| {
            if v == 42 {
                Err(TestCaseError::Fail("the answer".into()))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = minimise(&(0u32..100,), (42,), "m".into(), &only_42);
        assert_eq!(min, (42,));
        assert_eq!(msg, "m", "message stays from the original failure");
        assert_eq!(steps, 0);
    }

    #[test]
    #[should_panic(expected = "inputs: (10,)")]
    fn failing_property_reports_shrunk_inputs() {
        run_property("shrunk", (0u64..1000,), |&(v,)| {
            if v >= 10 {
                Err(TestCaseError::Fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        });
    }
}
