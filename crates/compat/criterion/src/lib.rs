//! Vendored mini `criterion`: wall-clock micro-benchmarking without the
//! statistics stack.
//!
//! Each benchmark warms up for `warm_up_time`, then collects
//! `sample_size` samples; a sample times a batch of iterations sized so
//! one batch lasts roughly `measurement_time / sample_size`. Reported
//! per-iteration numbers are the mean / median / min over samples.
//!
//! Results print to stdout and are appended to a JSON report (path from
//! `$CRITERION_JSON`, default `BENCH_parallel.json`) so CI and the repo
//! can record speedups. A CLI filter argument (as in
//! `cargo bench -- matrix`) restricts which benchmarks run, matching by
//! substring exactly like the real criterion.
//!
//! Before statistics, samples pass through **MAD-based outlier
//! rejection** ([`reject_outliers_mad`]): CI runners get descheduled,
//! and a single 10x sample would otherwise poison the committed mean in
//! `BENCH_parallel.json`. Rejected counts are reported alongside the
//! retained-sample statistics.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The mini harness
/// times setup outside the measured region for every variant, so the
/// hint only exists for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One benchmark's collected timing, per iteration, in nanoseconds.
/// Statistics are over the samples retained by MAD rejection;
/// `rejected` counts the discards.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
    pub rejected: usize,
    pub iters_per_sample: u64,
}

/// Robust scale-factor turning a MAD into a normal-consistent sigma.
const MAD_SIGMA: f64 = 1.4826;
/// Rejection threshold in robust sigmas (the conventional 3σ fence,
/// applied to the slow side only).
const MAD_FENCE: f64 = 3.0;

/// Split `samples` into (retained, rejected-count) by an **upper-only**
/// median + 3·1.4826·MAD fence. Timing noise on shared runners is
/// one-sided — preemption only ever makes a sample *slower* — so an
/// unusually fast sample is real performance, not noise, and must
/// survive (it is exactly what `min_ns`, the speedup-claim statistic,
/// exists to capture). Only the slow tail is rejected.
///
/// When the MAD is zero (heavily quantized timings where most samples
/// are identical) every sample is retained: a zero-width fence would
/// reject legitimate jitter, which is worse than keeping an outlier.
pub fn reject_outliers_mad(samples: &[f64]) -> (Vec<f64>, usize) {
    if samples.len() < 3 {
        return (samples.to_vec(), 0);
    }
    let median_of = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let median = median_of(&mut samples.to_vec());
    let mad = median_of(&mut samples.iter().map(|x| (x - median).abs()).collect());
    if mad == 0.0 {
        return (samples.to_vec(), 0);
    }
    let fence = MAD_FENCE * MAD_SIGMA * mad;
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|x| x - median <= fence)
        .collect();
    let rejected = samples.len() - kept.len();
    (kept, rejected)
}

/// The benchmark driver. Construct with [`Criterion::default`], adjust
/// with the builder methods, then register benchmarks.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Respect `cargo bench -- <filter>`; ignore harness flags the
        // real criterion defines (--bench is passed by cargo itself).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark closure (skipped unless it matches the CLI
    /// filter, when one was given).
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        assert!(!bencher.sample_ns.is_empty(), "benchmark {name} produced no samples");
        let (mut sorted, rejected) = reject_outliers_mad(&bencher.sample_ns);
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let result = BenchResult {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            samples: sorted.len(),
            rejected,
            iters_per_sample: bencher.iters_per_sample,
        };
        println!(
            "{name:<44} mean {:>12}  median {:>12}  min {:>12}  ({} samples x {} iters{})",
            fmt_ns(result.mean_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters_per_sample,
            if result.rejected > 0 {
                format!(", {} outliers rejected", result.rejected)
            } else {
                String::new()
            },
        );
        self.results.push(result);
        self
    }

    /// All results collected so far (used by `criterion_main!`).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Append results to the JSON report file. Merges with an existing
    /// report by benchmark name, so successive filtered runs accumulate.
    pub fn write_json_report(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var("CRITERION_JSON").unwrap_or_else(|_| {
            // `cargo bench` sets CWD to the *package* dir; put the
            // report at the workspace root (the outermost ancestor
            // holding a Cargo.lock) so it lands in one canonical place.
            let mut root = std::env::current_dir().unwrap_or_else(|_| ".".into());
            for anc in root.clone().ancestors() {
                if anc.join("Cargo.lock").exists() {
                    root = anc.to_path_buf();
                }
            }
            root.join("BENCH_parallel.json").to_string_lossy().into_owned()
        });
        let mut entries: Vec<(String, String)> = Vec::new();
        if let Ok(old) = std::fs::read_to_string(&path) {
            for line in old.lines() {
                let t = line.trim().trim_end_matches(',');
                if let Some(name) = t.split('"').nth(1) {
                    if t.contains("mean_ns") {
                        entries.push((name.to_string(), t.to_string()));
                    }
                }
            }
        }
        for r in &self.results {
            let line = format!(
                "\"{}\": {{\"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"rejected\": {}, \"iters_per_sample\": {}}}",
                r.name, r.mean_ns, r.median_ns, r.min_ns, r.samples, r.rejected, r.iters_per_sample
            );
            if let Some(e) = entries.iter_mut().find(|(n, _)| n == &r.name) {
                e.1 = line;
            } else {
                entries.push((r.name.clone(), line));
            }
        }
        let body: Vec<String> = entries.iter().map(|(_, l)| format!("  {l}")).collect();
        let json = format!("{{\n{}\n}}\n", body.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("benchmark report written to {path}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, also yielding a per-iteration estimate for batching.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_ns).round() as u64).max(1);
        self.iters_per_sample = batch;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.sample_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut est = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            est += t.elapsed();
            warm_iters += 1;
        }
        let est_ns = (est.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_ns).round() as u64).max(1);
        self.iters_per_sample = batch;
        for _ in 0..self.sample_size {
            let mut measured = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                measured += t.elapsed();
            }
            self.sample_ns
                .push(measured.as_nanos() as f64 / batch as f64);
        }
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }`
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.write_json_report();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!(benches);` — generates `fn main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            filter: None,
            ..Criterion::default()
        }
        .sample_size(3)
        .measurement_time(Duration::from_millis(30))
        .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn mad_rejects_the_fixture_outliers() {
        // A CI-noise shaped fixture: tight cluster around 100 ns with
        // two preemption spikes. MAD ≈ 1, fence ≈ 4.4 — both spikes go,
        // every in-cluster sample stays.
        let fixture = [99.0, 100.0, 101.0, 100.0, 102.0, 98.0, 100.0, 1_000.0, 450.0];
        let (kept, rejected) = reject_outliers_mad(&fixture);
        assert_eq!(rejected, 2);
        assert_eq!(kept.len(), 7);
        assert!(kept.iter().all(|&x| x < 103.0));
        // The retained mean is no longer poisoned by the spikes.
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        // The fence is upper-only: a genuinely fast sample is signal
        // (it becomes min_ns), never an outlier.
        let with_fast = [90.0, 99.0, 100.0, 100.0, 100.0, 101.0, 102.0, 1_000.0];
        let (kept, rejected) = reject_outliers_mad(&with_fast);
        assert_eq!(rejected, 1, "only the slow spike goes");
        assert!(kept.contains(&90.0), "fast sample must survive for min_ns");
    }

    #[test]
    fn mad_keeps_everything_when_quantized() {
        // All-identical timings: MAD is 0; a zero-width fence must not
        // reject the jitter-free samples.
        let (kept, rejected) = reject_outliers_mad(&[50.0; 8]);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 8);
        // Mostly-identical with one genuine outlier still has MAD 0:
        // documented behaviour is to keep it (no fence to reject with).
        let (kept, rejected) = reject_outliers_mad(&[50.0, 50.0, 50.0, 50.0, 99.0]);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn mad_passes_tiny_samples_through() {
        let (kept, rejected) = reject_outliers_mad(&[1.0, 100.0]);
        assert_eq!((kept.len(), rejected), (2, 0));
        let (kept, rejected) = reject_outliers_mad(&[]);
        assert_eq!((kept.len(), rejected), (0, 0));
    }

    #[test]
    fn bench_result_reports_rejection_count() {
        let mut c = fast_criterion();
        c.bench_function("steady", |b| b.iter(|| black_box(1u64).wrapping_mul(3)));
        let r = &c.results()[0];
        // Statistics are over retained samples only.
        assert_eq!(r.samples + r.rejected, 3);
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = fast_criterion();
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        // MAD rejection may trim noisy samples; retained + rejected is
        // always the configured sample count.
        assert_eq!(r.samples + r.rejected, 3);
        assert!(r.samples >= 1);
        assert!(r.min_ns <= r.median_ns && r.min_ns > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = fast_criterion();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results().len(), 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = fast_criterion();
        c.filter = Some("zzz".into());
        c.bench_function("abc", |b| b.iter(|| 1));
        assert!(c.results().is_empty());
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with(" s"));
    }
}
