//! Vendored mini `criterion`: wall-clock micro-benchmarking without the
//! statistics stack.
//!
//! Each benchmark warms up for `warm_up_time`, then collects
//! `sample_size` samples; a sample times a batch of iterations sized so
//! one batch lasts roughly `measurement_time / sample_size`. Reported
//! per-iteration numbers are the mean / median / min over samples.
//!
//! Results print to stdout and are appended to a JSON report (path from
//! `$CRITERION_JSON`, default `BENCH_parallel.json`) so CI and the repo
//! can record speedups. A CLI filter argument (as in
//! `cargo bench -- matrix`) restricts which benchmarks run, matching by
//! substring exactly like the real criterion.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The mini harness
/// times setup outside the measured region for every variant, so the
/// hint only exists for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One benchmark's collected timing, per iteration, in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// The benchmark driver. Construct with [`Criterion::default`], adjust
/// with the builder methods, then register benchmarks.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Respect `cargo bench -- <filter>`; ignore harness flags the
        // real criterion defines (--bench is passed by cargo itself).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark closure (skipped unless it matches the CLI
    /// filter, when one was given).
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let mut sorted = bencher.sample_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        assert!(!sorted.is_empty(), "benchmark {name} produced no samples");
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let result = BenchResult {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            samples: sorted.len(),
            iters_per_sample: bencher.iters_per_sample,
        };
        println!(
            "{name:<44} mean {:>12}  median {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_ns(result.mean_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
        self
    }

    /// All results collected so far (used by `criterion_main!`).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Append results to the JSON report file. Merges with an existing
    /// report by benchmark name, so successive filtered runs accumulate.
    pub fn write_json_report(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var("CRITERION_JSON").unwrap_or_else(|_| {
            // `cargo bench` sets CWD to the *package* dir; put the
            // report at the workspace root (the outermost ancestor
            // holding a Cargo.lock) so it lands in one canonical place.
            let mut root = std::env::current_dir().unwrap_or_else(|_| ".".into());
            for anc in root.clone().ancestors() {
                if anc.join("Cargo.lock").exists() {
                    root = anc.to_path_buf();
                }
            }
            root.join("BENCH_parallel.json").to_string_lossy().into_owned()
        });
        let mut entries: Vec<(String, String)> = Vec::new();
        if let Ok(old) = std::fs::read_to_string(&path) {
            for line in old.lines() {
                let t = line.trim().trim_end_matches(',');
                if let Some(name) = t.split('"').nth(1) {
                    if t.contains("mean_ns") {
                        entries.push((name.to_string(), t.to_string()));
                    }
                }
            }
        }
        for r in &self.results {
            let line = format!(
                "\"{}\": {{\"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                r.name, r.mean_ns, r.median_ns, r.min_ns, r.samples, r.iters_per_sample
            );
            if let Some(e) = entries.iter_mut().find(|(n, _)| n == &r.name) {
                e.1 = line;
            } else {
                entries.push((r.name.clone(), line));
            }
        }
        let body: Vec<String> = entries.iter().map(|(_, l)| format!("  {l}")).collect();
        let json = format!("{{\n{}\n}}\n", body.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("benchmark report written to {path}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, also yielding a per-iteration estimate for batching.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_ns).round() as u64).max(1);
        self.iters_per_sample = batch;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.sample_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut est = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            est += t.elapsed();
            warm_iters += 1;
        }
        let est_ns = (est.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_ns).round() as u64).max(1);
        self.iters_per_sample = batch;
        for _ in 0..self.sample_size {
            let mut measured = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                measured += t.elapsed();
            }
            self.sample_ns
                .push(measured.as_nanos() as f64 / batch as f64);
        }
    }
}

/// `criterion_group! { name = benches; config = ...; targets = a, b }`
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.write_json_report();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!(benches);` — generates `fn main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            filter: None,
            ..Criterion::default()
        }
        .sample_size(3)
        .measurement_time(Duration::from_millis(30))
        .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = fast_criterion();
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.median_ns && r.min_ns > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = fast_criterion();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results().len(), 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = fast_criterion();
        c.filter = Some("zzz".into());
        c.bench_function("abc", |b| b.iter(|| 1));
        assert!(c.results().is_empty());
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with(" s"));
    }
}
