//! Vendored stand-in for the parts of `bytes` 1.x this workspace uses.
//!
//! [`Bytes`] is an immutable byte buffer with a read cursor; [`BytesMut`]
//! is a growable builder. Both store a plain `Vec<u8>`: the simulator's
//! frames are tiny and short-lived, so the real crate's reference-counted
//! zero-copy machinery is deliberately omitted. Integer accessors are
//! big-endian (network order), matching the real crate's `get_u32` /
//! `put_u32` family.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Copy `dest.len()` bytes out and advance past them.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }
}

/// Write-side append operations (big-endian integers).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Unread length (alias of [`Buf::remaining`], as on the real type).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of Bytes");
        self.pos += n;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }
}

/// A growable byte buffer builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Remove and return the first `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end");
        let rest = self.data.split_off(n);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance past end of BytesMut");
        self.data.drain(..n);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0xABCD);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xABCD);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn integers_are_big_endian_on_the_wire() {
        let mut b = BytesMut::new();
        b.put_u32(1);
        assert_eq!(&b[..], &[0, 0, 0, 1]);
    }

    #[test]
    fn split_to_takes_prefix() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
    }

    #[test]
    fn advance_consumes_front() {
        let mut b = BytesMut::new();
        b.put_slice(b"abcdef");
        b.advance(2);
        assert_eq!(&b[..], b"cdef");
        let mut f: Bytes = b.freeze();
        f.advance(1);
        assert_eq!(&f[..], b"def");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn deref_and_indexing_see_unread_suffix() {
        let mut b = BytesMut::new();
        b.put_slice(b"abcd");
        let mut f = b.freeze();
        assert_eq!(f[0], b'a');
        f.advance(1);
        assert_eq!(f[0], b'b');
        assert_eq!(&f[..2], b"bc");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        Bytes::from(vec![1, 2]).advance(3);
    }
}
