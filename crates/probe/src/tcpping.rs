//! TCP-ping: latency as TCP connect time to the Azureus port (6881).
//!
//! Paper §3.2: "ping and traceroute, the usual tools of choice, mostly
//! fail here: most peers do not respond [...] we instead measure the
//! latency to a peer as the time it takes to complete a TCP 'connect' to
//! the port at the peer."

use crate::{NoiseConfig, RetryOutcome, RetryPolicy};
use np_topology::{HostId, InternetModel};
use np_util::dist;
use np_util::parallel::item_seed;
use np_util::rng::rng_for;
use np_util::Micros;
use rand::rngs::StdRng;

/// Seed tag isolating TCP-connect retry jitter from the noise stream.
const TCP_RETRY_TAG: u64 = 0x5443_5254; // "TCRT"

/// The TCP-ping tool bound to a source host.
pub struct TcpPing<'w> {
    world: &'w InternetModel,
    src: HostId,
    noise: NoiseConfig,
    seed: u64,
    rng: StdRng,
}

impl<'w> TcpPing<'w> {
    /// Create the tool. Noise stream: `sub_seed(seed, 0x544350)`.
    pub fn new(world: &'w InternetModel, src: HostId, noise: NoiseConfig, seed: u64) -> TcpPing<'w> {
        TcpPing {
            world,
            src,
            noise,
            seed,
            rng: rng_for(seed, 0x54_43_50), // "TCP"
        }
    }

    /// Connect-time to `dst`'s Azureus port; `None` when the peer does
    /// not accept (NAT, firewall, or client gone).
    pub fn measure(&mut self, dst: HostId) -> Option<Micros> {
        if !self.world.host(dst).tcp_responsive {
            return None;
        }
        let truth = self.world.rtt(self.src, dst);
        let accept_lag = dist::exponential(&mut self.rng, self.noise.tcp_lag_mean_us);
        Some(self.noise.sample_rtt(truth, &mut self.rng) + Micros::from_us(accept_lag as u64))
    }

    /// TCP-connect with deterministic retry-with-backoff: the wait
    /// schedule is a pure function of `(policy, tool seed, dst)` — see
    /// [`TcpPing::retry_schedule_us`]. A non-accepting peer (NAT,
    /// firewall, client gone) burns the whole schedule and yields
    /// `None`.
    pub fn measure_retry(&mut self, dst: HostId, policy: &RetryPolicy) -> RetryOutcome {
        let stream = item_seed(self.seed, TCP_RETRY_TAG, u64::from(dst.0));
        let mut waited_us = 0u64;
        for attempt in 0..policy.max_attempts.max(1) {
            waited_us += policy.delay_us(stream, attempt);
            if let Some(value) = self.measure(dst) {
                return RetryOutcome {
                    value: Some(value),
                    attempts: attempt + 1,
                    waited_us,
                };
            }
        }
        RetryOutcome {
            value: None,
            attempts: policy.max_attempts.max(1),
            waited_us,
        }
    }

    /// The exact backoff schedule [`TcpPing::measure_retry`] would wait
    /// against `dst`. Pure: needs no `&mut`, identical on any thread.
    pub fn retry_schedule_us(&self, dst: HostId, policy: &RetryPolicy) -> Vec<u64> {
        policy.schedule_us(item_seed(self.seed, TCP_RETRY_TAG, u64::from(dst.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::WorldParams;

    fn world() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 19)
    }

    #[test]
    fn only_tcp_responsive_peers_answer() {
        let w = world();
        let vp = w.vantage_points[0];
        let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 1);
        let up = w.azureus_peers().find(|&p| w.host(p).tcp_responsive).expect("some respond");
        let down = w.azureus_peers().find(|&p| !w.host(p).tcp_responsive).expect("most do not");
        assert!(t.measure(up).is_some());
        assert_eq!(t.measure(down), None);
    }

    #[test]
    fn retry_exhausts_on_unresponsive_peers_and_is_thread_invariant() {
        let w = std::sync::Arc::new(world());
        let vp = w.vantage_points[1];
        let down = w.azureus_peers().find(|&p| !w.host(p).tcp_responsive).expect("most do not");
        let policy = RetryPolicy::default();
        let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 8);
        let sched = t.retry_schedule_us(down, &policy);
        let out = t.measure_retry(down, &policy);
        assert_eq!(out.value, None);
        assert_eq!(out.attempts, policy.max_attempts);
        assert_eq!(out.waited_us, sched.iter().sum::<u64>());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = w.clone();
                let expected = out;
                std::thread::spawn(move || {
                    let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 8);
                    assert_eq!(t.measure_retry(down, &RetryPolicy::default()), expected);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        // The TCP retry stream is distinct from the ping retry stream
        // for the same (seed, destination).
        let p = crate::Pinger::new(&w, vp, NoiseConfig::default(), 8);
        assert_ne!(p.retry_schedule_us(down, &policy), sched);
    }

    #[test]
    fn retry_on_a_live_peer_answers_immediately() {
        let w = world();
        let vp = w.vantage_points[0];
        let up = w.azureus_peers().find(|&p| w.host(p).tcp_responsive).expect("some respond");
        let expect = TcpPing::new(&w, vp, NoiseConfig::default(), 9).measure(up);
        let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 9);
        let out = t.measure_retry(up, &RetryPolicy::default());
        assert_eq!(out, RetryOutcome { value: expect, attempts: 1, waited_us: 0 });
    }

    #[test]
    fn connect_time_brackets_truth() {
        let w = world();
        let vp = w.vantage_points[2];
        let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 2);
        let peer = w.azureus_peers().find(|&p| w.host(p).tcp_responsive).expect("responder");
        let truth = w.rtt(vp, peer);
        for _ in 0..20 {
            let m = t.measure(peer).expect("responsive");
            assert!(m >= truth.scale(0.96), "connect below light speed: {m} vs {truth}");
            assert!(m <= truth.scale(1.04) + Micros::from_ms(5.0), "connect absurdly slow: {m}");
        }
    }
}
