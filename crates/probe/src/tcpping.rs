//! TCP-ping: latency as TCP connect time to the Azureus port (6881).
//!
//! Paper §3.2: "ping and traceroute, the usual tools of choice, mostly
//! fail here: most peers do not respond [...] we instead measure the
//! latency to a peer as the time it takes to complete a TCP 'connect' to
//! the port at the peer."

use crate::NoiseConfig;
use np_topology::{HostId, InternetModel};
use np_util::dist;
use np_util::rng::rng_for;
use np_util::Micros;
use rand::rngs::StdRng;

/// The TCP-ping tool bound to a source host.
pub struct TcpPing<'w> {
    world: &'w InternetModel,
    src: HostId,
    noise: NoiseConfig,
    rng: StdRng,
}

impl<'w> TcpPing<'w> {
    /// Create the tool. Noise stream: `sub_seed(seed, 0x544350)`.
    pub fn new(world: &'w InternetModel, src: HostId, noise: NoiseConfig, seed: u64) -> TcpPing<'w> {
        TcpPing {
            world,
            src,
            noise,
            rng: rng_for(seed, 0x54_43_50), // "TCP"
        }
    }

    /// Connect-time to `dst`'s Azureus port; `None` when the peer does
    /// not accept (NAT, firewall, or client gone).
    pub fn measure(&mut self, dst: HostId) -> Option<Micros> {
        if !self.world.host(dst).tcp_responsive {
            return None;
        }
        let truth = self.world.rtt(self.src, dst);
        let accept_lag = dist::exponential(&mut self.rng, self.noise.tcp_lag_mean_us);
        Some(self.noise.sample_rtt(truth, &mut self.rng) + Micros::from_us(accept_lag as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::WorldParams;

    fn world() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 19)
    }

    #[test]
    fn only_tcp_responsive_peers_answer() {
        let w = world();
        let vp = w.vantage_points[0];
        let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 1);
        let up = w.azureus_peers().find(|&p| w.host(p).tcp_responsive).expect("some respond");
        let down = w.azureus_peers().find(|&p| !w.host(p).tcp_responsive).expect("most do not");
        assert!(t.measure(up).is_some());
        assert_eq!(t.measure(down), None);
    }

    #[test]
    fn connect_time_brackets_truth() {
        let w = world();
        let vp = w.vantage_points[2];
        let mut t = TcpPing::new(&w, vp, NoiseConfig::default(), 2);
        let peer = w.azureus_peers().find(|&p| w.host(p).tcp_responsive).expect("responder");
        let truth = w.rtt(vp, peer);
        for _ in 0..20 {
            let m = t.measure(peer).expect("responsive");
            assert!(m >= truth.scale(0.96), "connect below light speed: {m} vs {truth}");
            assert!(m <= truth.scale(1.04) + Micros::from_ms(5.0), "connect absurdly slow: {m}");
        }
    }
}
