//! The King latency-estimation technique (Gummadi et al., SIGCOMM 2002).
//!
//! King measures the latency between two recursive DNS servers by timing
//! a recursive query bounced through the first towards a zone the second
//! is authoritative for. The technique inherits two error sources the
//! paper leans on:
//!
//! * **DNS processing lag** at both servers inflates the measurement —
//!   "at low latencies, the lag involved at the DNS servers [...] is
//!   likely to constitute a non-negligible part of the measured latency";
//! * **same-domain pairs cannot be measured** — "such servers are highly
//!   likely to be authoritative name-servers for the same names, so the
//!   recursive queries used by King may not be forwarded".

use crate::NoiseConfig;
use np_topology::{HostId, InternetModel};
use np_util::dist;
use np_util::rng::rng_for;
use np_util::Micros;
use rand::rngs::StdRng;

/// The King measurement tool.
pub struct King<'w> {
    world: &'w InternetModel,
    noise: NoiseConfig,
    rng: StdRng,
}

/// Why a King measurement failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KingError {
    /// The servers share a domain (recursion not forwarded).
    SameDomain,
    /// Either endpoint is not a DNS server.
    NotDnsServer,
}

impl<'w> King<'w> {
    /// Create the tool. Noise stream: `sub_seed(seed, 0x4B494E47)`.
    pub fn new(world: &'w InternetModel, noise: NoiseConfig, seed: u64) -> King<'w> {
        King {
            world,
            noise,
            rng: rng_for(seed, 0x4B49_4E47), // "KING"
        }
    }

    /// Estimate the RTT between two recursive DNS servers.
    pub fn measure(&mut self, ns1: HostId, ns2: HostId) -> Result<Micros, KingError> {
        let o1 = self.world.org_of(ns1).ok_or(KingError::NotDnsServer)?;
        let o2 = self.world.org_of(ns2).ok_or(KingError::NotDnsServer)?;
        if o1 == o2 {
            return Err(KingError::SameDomain);
        }
        let truth = self.world.rtt(ns1, ns2);
        // Heavy-tailed processing lag: busy resolvers occasionally add
        // multiple milliseconds (log-normal, median = dns_lag_mean_us).
        let mu = self.noise.dns_lag_mean_us.max(1.0).ln();
        let lag1 = dist::log_normal(&mut self.rng, mu, 1.2);
        let lag2 = dist::log_normal(&mut self.rng, mu, 1.2);
        let lag = Micros::from_us((lag1 + lag2) as u64);
        Ok(self.noise.sample_rtt(truth, &mut self.rng) + lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::{InternetModel, WorldParams};

    fn world() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 17)
    }

    #[test]
    fn same_domain_pairs_are_refused() {
        let w = world();
        // Find two servers of the same org.
        let mut by_org = std::collections::HashMap::new();
        for h in w.dns_servers() {
            by_org
                .entry(w.org_of(h).expect("dns"))
                .or_insert_with(Vec::new)
                .push(h);
        }
        let pair = by_org.values().find(|v| v.len() >= 2).expect("multi-server org");
        let mut king = King::new(&w, NoiseConfig::default(), 1);
        assert_eq!(king.measure(pair[0], pair[1]), Err(KingError::SameDomain));
    }

    #[test]
    fn non_dns_hosts_are_refused() {
        let w = world();
        let dns = w.dns_servers().next().expect("dns");
        let az = w.azureus_peers().next().expect("azureus");
        let mut king = King::new(&w, NoiseConfig::default(), 2);
        assert_eq!(king.measure(dns, az), Err(KingError::NotDnsServer));
    }

    #[test]
    fn measurement_is_inflated_by_lag_at_low_latency() {
        let w = world();
        // Cross-org servers in the same PoP: small true RTT.
        let servers: Vec<HostId> = w.dns_servers().collect();
        let mut king = King::new(&w, NoiseConfig::default(), 3);
        let mut checked = 0;
        'outer: for (i, &a) in servers.iter().enumerate() {
            for &b in servers.iter().skip(i + 1) {
                if w.org_of(a) == w.org_of(b) || w.pop_of(a) != w.pop_of(b) {
                    continue;
                }
                let truth = w.rtt(a, b);
                if truth > Micros::from_ms(4.0) {
                    continue;
                }
                // Average of many measurements: lag adds ~0.8 ms mean.
                let mut sum = 0.0;
                let n = 40;
                for _ in 0..n {
                    sum += king.measure(a, b).expect("measurable").as_ms();
                }
                let mean = sum / n as f64;
                assert!(
                    mean > truth.as_ms() * 1.05,
                    "King at {truth} should be inflated, got mean {mean:.3}"
                );
                checked += 1;
                if checked >= 3 {
                    break 'outer;
                }
            }
        }
        assert!(checked > 0, "no same-PoP cross-org pair found");
    }

    #[test]
    fn measurement_tracks_truth_at_high_latency() {
        let w = world();
        let servers: Vec<HostId> = w.dns_servers().collect();
        let mut king = King::new(&w, NoiseConfig::default(), 4);
        let (a, b) = {
            let mut found = None;
            'outer: for (i, &a) in servers.iter().enumerate() {
                for &b in servers.iter().skip(i + 1) {
                    if w.org_of(a) != w.org_of(b) && w.rtt(a, b) > Micros::from_ms(50.0) {
                        found = Some((a, b));
                        break 'outer;
                    }
                }
            }
            found.expect("far pair exists")
        };
        let truth = w.rtt(a, b).as_ms();
        let m = king.measure(a, b).expect("measurable").as_ms();
        let rel = (m - truth) / truth;
        assert!(
            (0.0..0.1).contains(&rel),
            "relative King error {rel:.4} at {truth:.1} ms should be small and positive"
        );
    }
}
