//! Traceroute and the rockettrace annotation layer.
//!
//! The observed trace differs from ground truth the way real traces do:
//! unresponsive routers appear as anonymous hops (`router: None` — the
//! `* * *` lines), every hop RTT carries jitter, router names parse into
//! `(AS, city)` annotations that are occasionally mis-configured (stored
//! on the router at world-generation time), the destination host answers
//! only when ICMP-responsive, and *route-unstable* targets hide their
//! final router from half the vantage points (per-(host, VP) determinism)
//! — the paper's reason for demanding upstream-router agreement across
//! all seven vantage points.

use crate::NoiseConfig;
use np_topology::internet::TraceHop;
use np_topology::names::Annotation;
use np_topology::{HostId, InternetModel, RouterId};
use np_util::rng::{rng_for, splitmix64};
use np_util::Micros;
use rand::rngs::StdRng;

/// One observed hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedHop {
    /// The router, or `None` for an anonymous (`* * *`) hop.
    pub router: Option<RouterId>,
    /// The rockettrace annotation, when the router responded and its
    /// name parsed.
    pub anno: Option<Annotation>,
    /// Measured RTT to the hop (meaningless for anonymous hops).
    pub rtt: Micros,
}

/// An observed traceroute.
#[derive(Debug, Clone)]
pub struct Trace {
    pub vp_idx: usize,
    pub target: HostId,
    pub hops: Vec<ObservedHop>,
    /// Did the destination itself answer (final ICMP echo)?
    pub dest_responded: bool,
    /// RTT to the destination when it answered.
    pub dest_rtt: Option<Micros>,
}

impl Trace {
    /// The paper's "closest upstream router": the last hop with a valid
    /// router. ("If none of the entries in the penultimate hop are valid,
    /// we go up to the next hop(s).")
    pub fn last_valid_router(&self) -> Option<RouterId> {
        self.hops.iter().rev().find_map(|h| h.router)
    }

    /// RTT of the last valid router's hop.
    pub fn last_valid_rtt(&self) -> Option<Micros> {
        self.hops.iter().rev().find(|h| h.router.is_some()).map(|h| h.rtt)
    }

    /// Position (hop index) of a router on the trace.
    pub fn position_of(&self, r: RouterId) -> Option<usize> {
        self.hops.iter().position(|h| h.router == Some(r))
    }
}

/// The traceroute campaign tool.
pub struct Tracer<'w> {
    world: &'w InternetModel,
    noise: NoiseConfig,
    rng: StdRng,
    /// Cached VP access chains (identical prefix of every trace).
    chains: Vec<Vec<TraceHop>>,
}

impl<'w> Tracer<'w> {
    /// Create a tracer. Noise stream: `sub_seed(seed, 0x54524143)`.
    pub fn new(world: &'w InternetModel, noise: NoiseConfig, seed: u64) -> Tracer<'w> {
        let chains = (0..world.vantage_points.len())
            .map(|v| world.vp_chain(v))
            .collect();
        Tracer {
            world,
            noise,
            rng: rng_for(seed, 0x5452_4143), // "TRAC"
            chains,
        }
    }

    /// Run a traceroute from vantage point `vp_idx` to `target`.
    pub fn trace(&mut self, vp_idx: usize, target: HostId) -> Trace {
        let truth = self
            .world
            .trace_route_with_prefix(vp_idx, target, &self.chains[vp_idx]);
        let host = self.world.host(target);
        // Route-unstable targets: vantage points see the access tail cut
        // at different depths (ECMP / ICMP rate-limiting at the access
        // edge). Three deterministic states per (host, VP): full tail,
        // last hop hidden, last two hops hidden — so even targets behind
        // unresponsive access gear still disagree across vantage points.
        let cut = if host.route_stable {
            0
        } else {
            (splitmix64(target.0 as u64 ^ ((vp_idx as u64) << 32)) % 3) as usize
        };
        let visible = &truth[..truth.len().saturating_sub(cut).max(1)];
        let hops = visible
            .iter()
            .map(|h| {
                let r = self.world.router(h.router);
                if r.responsive {
                    ObservedHop {
                        router: Some(h.router),
                        anno: r.anno,
                        rtt: self.noise.sample_rtt(h.rtt, &mut self.rng),
                    }
                } else {
                    ObservedHop {
                        router: None,
                        anno: None,
                        rtt: Micros::ZERO,
                    }
                }
            })
            .collect();
        let dest_rtt = if host.icmp_responsive {
            let t = self.world.rtt(self.world.vantage_points[vp_idx], target);
            Some(self.noise.sample_rtt(t, &mut self.rng))
        } else {
            None
        };
        Trace {
            vp_idx,
            target,
            hops,
            dest_responded: dest_rtt.is_some(),
            dest_rtt,
        }
    }

    /// Render a merged tree of traces to a set of targets — Figure 2's
    /// "sample tree of traceroutes from the measuring host".
    pub fn trace_tree(&mut self, vp_idx: usize, targets: &[HostId]) -> String {
        use std::collections::BTreeMap;
        // children: router -> set of next hops (or target leaves).
        let mut traces = Vec::new();
        for &t in targets {
            traces.push(self.trace(vp_idx, t));
        }
        let mut out = String::new();
        out.push_str(&format!("measuring host (vp{vp_idx})\n"));
        // Group traces by shared prefixes, rendering depth-first.
        fn render(
            traces: &[(usize, &Trace)],
            depth: usize,
            world: &InternetModel,
            out: &mut String,
        ) {
            // Partition by the router at `depth`.
            let mut groups: BTreeMap<Option<u32>, Vec<(usize, &Trace)>> = BTreeMap::new();
            let mut leaves: Vec<&Trace> = Vec::new();
            for &(_, t) in traces {
                match t.hops.get(depth) {
                    Some(h) => groups
                        .entry(h.router.map(|r| r.0))
                        .or_default()
                        .push((depth, t)),
                    None => leaves.push(t),
                }
            }
            for t in leaves {
                out.push_str(&"  ".repeat(depth + 1));
                out.push_str(&format!("`- host {}\n", world.host(t.target).ip));
            }
            for (router, group) in groups {
                out.push_str(&"  ".repeat(depth + 1));
                match router {
                    Some(r) => {
                        let rt = world.router(RouterId(r));
                        let name = rt
                            .anno
                            .map(|a| np_topology::names::router_name(a, r))
                            .unwrap_or_else(|| format!("{}", rt.ip));
                        out.push_str(&format!("+ {name}\n"));
                    }
                    None => out.push_str("+ * * *\n"),
                }
                render(&group, depth + 1, world, out);
            }
        }
        let refs: Vec<(usize, &Trace)> = traces.iter().map(|t| (0usize, t)).collect();
        render(&refs, 0, self.world, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::WorldParams;

    fn world() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 13)
    }

    #[test]
    fn trace_matches_ground_truth_hops() {
        let w = world();
        let mut tr = Tracer::new(&w, NoiseConfig::default(), 1);
        let target = w.dns_servers().next().expect("dns servers exist");
        let obs = tr.trace(0, target);
        let truth = w.trace_route(0, target);
        assert_eq!(obs.hops.len(), truth.len());
        for (o, t) in obs.hops.iter().zip(&truth) {
            if let Some(r) = o.router {
                assert_eq!(r, t.router);
            } else {
                assert!(!w.router(t.router).responsive, "hidden hop must be unresponsive");
            }
        }
    }

    #[test]
    fn last_valid_router_skips_anonymous_hops() {
        let w = world();
        let mut tr = Tracer::new(&w, NoiseConfig::default(), 2);
        // Find a peer whose attach router is unresponsive.
        for p in w.azureus_peers().take(5_000) {
            if w.host(p).route_stable && !w.router(w.attach_router(p)).responsive {
                let obs = tr.trace(0, p);
                let lv = obs.last_valid_router();
                assert_ne!(lv, Some(w.attach_router(p)));
                if let Some(lv) = lv {
                    assert!(w.router(lv).responsive);
                }
                return;
            }
        }
        panic!("no peer with unresponsive attach router found");
    }

    #[test]
    fn unstable_routes_disagree_across_vps() {
        let w = world();
        let mut tr = Tracer::new(&w, NoiseConfig::default(), 3);
        let mut found_disagreement = false;
        for p in w.azureus_peers().take(2_000) {
            if w.host(p).route_stable {
                continue;
            }
            let answers: Vec<Option<RouterId>> = (0..w.vantage_points.len())
                .map(|v| tr.trace(v, p).last_valid_router())
                .collect();
            if answers.windows(2).any(|w| w[0] != w[1]) {
                found_disagreement = true;
                break;
            }
        }
        assert!(found_disagreement, "unstable peers never disagreed");
    }

    #[test]
    fn stable_peers_agree_across_vps() {
        let w = world();
        let mut tr = Tracer::new(&w, NoiseConfig::default(), 4);
        let mut checked = 0;
        for p in w.azureus_peers().take(2_000) {
            let host = w.host(p);
            if !host.route_stable {
                continue;
            }
            // Multihomed targets may legitimately flip; skip them.
            if let Some(e) = w.end_net_of(p) {
                if w.end_nets[e.idx()].secondary_pop.is_some() {
                    continue;
                }
            }
            let answers: Vec<Option<RouterId>> = (0..w.vantage_points.len())
                .map(|v| tr.trace(v, p).last_valid_router())
                .collect();
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "stable single-homed peer disagreed: {answers:?}"
            );
            checked += 1;
            if checked > 50 {
                break;
            }
        }
        assert!(checked > 10, "too few stable peers checked");
    }

    #[test]
    fn trace_tree_renders() {
        let w = world();
        let mut tr = Tracer::new(&w, NoiseConfig::default(), 5);
        let targets: Vec<HostId> = w.dns_servers().take(6).collect();
        let tree = tr.trace_tree(0, &targets);
        assert!(tree.contains("measuring host"));
        assert!(tree.matches("host ").count() >= 4, "tree:\n{tree}");
    }
}
