//! ICMP ping.

use crate::{NoiseConfig, RetryOutcome, RetryPolicy};
use np_topology::{HostId, InternetModel, RouterId};
use np_util::parallel::item_seed;
use np_util::rng::rng_for;
use np_util::Micros;
use rand::rngs::StdRng;

/// Seed tag isolating ping retry jitter from the noise stream.
const PING_RETRY_TAG: u64 = 0x5049_5254; // "PIRT"

/// A ping tool bound to a source host (usually a vantage point).
pub struct Pinger<'w> {
    world: &'w InternetModel,
    src: HostId,
    noise: NoiseConfig,
    seed: u64,
    rng: StdRng,
}

impl<'w> Pinger<'w> {
    /// Create a pinger at `src`. Noise stream: `sub_seed(seed, 0x50494E47)`.
    pub fn new(world: &'w InternetModel, src: HostId, noise: NoiseConfig, seed: u64) -> Pinger<'w> {
        Pinger {
            world,
            src,
            noise,
            seed,
            rng: rng_for(seed, 0x5049_4E47), // "PING"
        }
    }

    /// The source host.
    pub fn source(&self) -> HostId {
        self.src
    }

    /// Ping a host. `None` when it filters ICMP.
    pub fn ping_host(&mut self, dst: HostId) -> Option<Micros> {
        if !self.world.host(dst).icmp_responsive {
            return None;
        }
        let truth = self.world.rtt(self.src, dst);
        Some(self.noise.sample_rtt(truth, &mut self.rng))
    }

    /// Ping a router. `None` when it filters ICMP.
    pub fn ping_router(&mut self, dst: RouterId) -> Option<Micros> {
        if !self.world.router(dst).responsive {
            return None;
        }
        let truth = self.world.rtt_host_router(self.src, dst);
        Some(self.noise.sample_rtt(truth, &mut self.rng))
    }

    /// Minimum of `n` pings to a host — the standard technique for
    /// suppressing jitter (the pipelines use `min_ping_host(·, 3)`).
    pub fn min_ping_host(&mut self, dst: HostId, n: usize) -> Option<Micros> {
        let mut best: Option<Micros> = None;
        for _ in 0..n.max(1) {
            let s = self.ping_host(dst)?;
            best = Some(best.map(|b| b.min(s)).unwrap_or(s));
        }
        best
    }

    /// Minimum of `n` pings to a router.
    pub fn min_ping_router(&mut self, dst: RouterId, n: usize) -> Option<Micros> {
        let mut best: Option<Micros> = None;
        for _ in 0..n.max(1) {
            let s = self.ping_router(dst)?;
            best = Some(best.map(|b| b.min(s)).unwrap_or(s));
        }
        best
    }

    /// Ping a host, retrying with deterministic exponential backoff.
    ///
    /// The wait before each retry is a pure function of `(policy, tool
    /// seed, destination, attempt)` — see [`Pinger::retry_schedule_us`]
    /// — so identical campaigns wait identically no matter which
    /// worker thread issues the probe or how many probes ran before it.
    /// ICMP filtering is a static host property, so an unresponsive
    /// target burns the full schedule and returns `None`.
    pub fn ping_host_retry(&mut self, dst: HostId, policy: &RetryPolicy) -> RetryOutcome {
        let stream = item_seed(self.seed, PING_RETRY_TAG, u64::from(dst.0));
        let mut waited_us = 0u64;
        for attempt in 0..policy.max_attempts.max(1) {
            waited_us += policy.delay_us(stream, attempt);
            if let Some(value) = self.ping_host(dst) {
                return RetryOutcome {
                    value: Some(value),
                    attempts: attempt + 1,
                    waited_us,
                };
            }
        }
        RetryOutcome {
            value: None,
            attempts: policy.max_attempts.max(1),
            waited_us,
        }
    }

    /// The exact backoff schedule [`Pinger::ping_host_retry`] would
    /// wait against `dst` — one entry per attempt, entry 0 always 0.
    /// Pure: needs no `&mut`, safe to pre-compute on any thread.
    pub fn retry_schedule_us(&self, dst: HostId, policy: &RetryPolicy) -> Vec<u64> {
        policy.schedule_us(item_seed(self.seed, PING_RETRY_TAG, u64::from(dst.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::WorldParams;

    fn world() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 11)
    }

    #[test]
    fn ping_tracks_ground_truth_within_jitter() {
        let w = world();
        let vp = w.vantage_points[0];
        let mut p = Pinger::new(&w, vp, NoiseConfig::default(), 1);
        let dst = w.dns_servers().find(|&h| w.host(h).icmp_responsive).expect("responsive dns");
        let truth = w.rtt(vp, dst);
        for _ in 0..50 {
            let m = p.ping_host(dst).expect("responsive");
            assert!(m >= truth, "samples never undercut propagation: {m} < {truth}");
            let err = m.as_ms() - truth.as_ms();
            assert!(
                err <= truth.as_ms() * 0.01 + 3.0,
                "ping {m} too far above truth {truth}"
            );
        }
    }

    #[test]
    fn unresponsive_targets_yield_none() {
        let w = world();
        let vp = w.vantage_points[0];
        let mut p = Pinger::new(&w, vp, NoiseConfig::default(), 2);
        if let Some(dead) = w.azureus_peers().find(|&h| !w.host(h).icmp_responsive) {
            assert_eq!(p.ping_host(dead), None);
        }
        if let Some(dead_r) = (0..w.routers.len() as u32)
            .map(np_topology::RouterId)
            .find(|&r| !w.router(r).responsive)
        {
            assert_eq!(p.ping_router(dead_r), None);
        }
    }

    #[test]
    fn min_ping_reduces_noise() {
        let w = world();
        let vp = w.vantage_points[0];
        let dst = w.dns_servers().find(|&h| w.host(h).icmp_responsive).expect("responsive");
        let truth = w.rtt(vp, dst);
        let mut single_err = 0.0;
        let mut min_err = 0.0;
        let mut p1 = Pinger::new(&w, vp, NoiseConfig::default(), 3);
        let mut p2 = Pinger::new(&w, vp, NoiseConfig::default(), 4);
        for _ in 0..100 {
            single_err += (p1.ping_host(dst).expect("resp").as_ms() - truth.as_ms()).abs();
            min_err += (p2.min_ping_host(dst, 5).expect("resp").as_ms() - truth.as_ms()).abs();
        }
        // min-of-5 biases low but its |error| spread is not larger than a
        // single sample's on average.
        assert!(min_err <= single_err * 1.5, "min {min_err} vs single {single_err}");
    }

    #[test]
    fn retry_on_a_responsive_host_succeeds_first_try() {
        let w = world();
        let vp = w.vantage_points[0];
        let dst = w.dns_servers().find(|&h| w.host(h).icmp_responsive).expect("responsive");
        let expect = Pinger::new(&w, vp, NoiseConfig::default(), 5).ping_host(dst);
        let mut p = Pinger::new(&w, vp, NoiseConfig::default(), 5);
        let out = p.ping_host_retry(dst, &RetryPolicy::default());
        assert_eq!(out.value, expect, "first attempt draws the same noise sample");
        assert_eq!(out.attempts, 1);
        assert_eq!(out.waited_us, 0);
    }

    #[test]
    fn retry_burns_the_full_schedule_on_filtered_hosts() {
        let w = world();
        let vp = w.vantage_points[0];
        let Some(dead) = w.azureus_peers().find(|&h| !w.host(h).icmp_responsive) else {
            return;
        };
        let policy = RetryPolicy::default();
        let mut p = Pinger::new(&w, vp, NoiseConfig::default(), 6);
        let sched = p.retry_schedule_us(dead, &policy);
        let out = p.ping_host_retry(dead, &policy);
        assert_eq!(out.value, None);
        assert_eq!(out.attempts, policy.max_attempts);
        assert_eq!(out.waited_us, sched.iter().sum::<u64>());
        assert!(out.waited_us > 0, "retries must actually back off");
    }

    #[test]
    fn retry_schedule_is_identical_on_every_thread() {
        let w = std::sync::Arc::new(world());
        let vp = w.vantage_points[0];
        let dst = w.dns_servers().next().expect("dns");
        let policy = RetryPolicy::default();
        let expect = Pinger::new(&w, vp, NoiseConfig::default(), 7).retry_schedule_us(dst, &policy);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = w.clone();
                let expect = expect.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let p = Pinger::new(&w, vp, NoiseConfig::default(), 7);
                        assert_eq!(p.retry_schedule_us(dst, &policy), expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        // Distinct destinations draw distinct jitter streams.
        let other = w.dns_servers().nth(1).expect("second dns");
        let p = Pinger::new(&w, vp, NoiseConfig::default(), 7);
        assert_ne!(p.retry_schedule_us(other, &policy), expect);
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let w = world();
        let vp = w.vantage_points[1];
        let dst = w.dns_servers().find(|&h| w.host(h).icmp_responsive).expect("responsive");
        let mut a = Pinger::new(&w, vp, NoiseConfig::default(), 9);
        let mut b = Pinger::new(&w, vp, NoiseConfig::default(), 9);
        assert_eq!(a.ping_host(dst), b.ping_host(dst));
    }
}
