//! # np-probe
//!
//! The measurement tools of the paper's §3, simulated over
//! [`np_topology::InternetModel`]:
//!
//! * [`Pinger`] — ICMP ping to hosts and routers: ground-truth RTT plus
//!   multiplicative jitter; unresponsive targets return `None`,
//! * [`Tracer`] — traceroute/rockettrace: the hop list with per-hop RTTs
//!   and `(AS, city)` annotations, with unresponsive routers showing as
//!   anonymous hops, unstable last hops differing across vantage points,
//!   and cached VP-side prefixes so campaigns over 10⁵ peers stay fast,
//! * [`King`] — the recursive-DNS latency estimator (Gummadi et al.):
//!   true RTT plus *DNS processing lag* on both ends (the paper's
//!   explanation for inflated measurements at low latencies); refuses
//!   same-domain pairs exactly like the real technique,
//! * [`TcpPing`] — the paper's TCP-connect latency to the Azureus port,
//! * [`vantage`] — the Table 1 vantage-point presentation names.
//!
//! All tools draw noise from their own seeded RNG stream, so campaigns
//! are reproducible. Lossy links are handled with deterministic
//! retry-with-backoff ([`Pinger::ping_host_retry`],
//! [`TcpPing::measure_retry`]): the wait schedule is a pure function of
//! `(policy, tool seed, destination)` — identical on any thread, in any
//! probe order — via [`np_util::backoff::RetryPolicy`].

pub mod king;
pub mod ping;
pub mod tcpping;
pub mod trace;
pub mod vantage;

pub use king::King;
pub use ping::Pinger;
pub use tcpping::TcpPing;
pub use trace::{ObservedHop, Trace, Tracer};

use np_util::Micros;
use rand::rngs::StdRng;
use rand::Rng;

pub use np_util::backoff::RetryPolicy;

/// The result of a retried probe: the measurement (if any attempt
/// answered), how many attempts ran, and the simulated microseconds
/// spent waiting between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// The first successful measurement, `None` when every attempt
    /// failed.
    pub value: Option<Micros>,
    /// Attempts actually issued (1 ≤ attempts ≤ `policy.max_attempts`).
    pub attempts: u32,
    /// Total simulated backoff wait, in µs.
    pub waited_us: u64,
}

/// Common noise parameters.
///
/// The model follows how real RTT samples behave: latency never drops
/// below the propagation floor; on top of it sit a small *one-sided*
/// multiplicative wobble (path/serialisation variation) and an
/// exponential queueing delay. Minimum-of-n probing therefore converges
/// towards the truth from above — which is what makes the paper's
/// ping-subtraction rule workable at all (a symmetric ±3 % model would
/// bury a 300 µs LAN latency under milliseconds of noise at 80 ms RTTs,
/// which real min-filtered pings do not do).
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// One-sided multiplicative jitter: samples are inflated by
    /// `U(0, jitter)` of the true RTT.
    pub jitter: f64,
    /// Mean of the additive exponential queueing delay (µs).
    pub queue_mean_us: f64,
    /// Mean DNS processing lag per server, for King (µs).
    pub dns_lag_mean_us: f64,
    /// Mean TCP accept lag, for TCP-ping (µs).
    pub tcp_lag_mean_us: f64,
    /// Additive per-probe floor (kernel/serialisation, µs).
    pub floor_us: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            jitter: 0.008,
            queue_mean_us: 250.0,
            dns_lag_mean_us: 400.0,
            tcp_lag_mean_us: 250.0,
            floor_us: 30,
        }
    }
}

impl NoiseConfig {
    /// Apply the noise model to a ground-truth RTT.
    pub(crate) fn sample_rtt(&self, truth: Micros, rng: &mut StdRng) -> Micros {
        let f = 1.0 + self.jitter * rng.gen::<f64>();
        let queue = np_util::dist::exponential(rng, self.queue_mean_us.max(1e-9));
        truth.scale(f) + Micros::from_us(self.floor_us + queue as u64)
    }
}
