//! The vantage-point set — the paper's Table 1.
//!
//! The measurement world always generates 7 vantage points in
//! maximally-spread PoPs; for reporting, they carry the PlanetLab names
//! the paper used.

/// The paper's Table 1: PlanetLab node names and locations.
pub const TABLE1: [(&str, &str); 7] = [
    ("planetlab02.cs.washington.edu", "Washington, USA"),
    ("planetlab3.ucsd.edu", "California, USA"),
    ("planetlab5.cs.cornell.edu", "New York, USA"),
    ("planetlab2.acis.ufl.edu", "Florida, USA"),
    ("neu1.6planetlab.edu.cn", "Shenyang, China"),
    ("planetlab2.iii.u-tokyo.ac.jp", "Tokyo, Japan"),
    ("planetlab2.xeno.cl.cam.ac.uk", "Cambridge, England"),
];

/// Presentation name for vantage point `idx`.
pub fn vp_name(idx: usize) -> &'static str {
    TABLE1[idx % TABLE1.len()].0
}

/// Render Table 1.
pub fn render_table1() -> String {
    let mut t = np_util::table::Table::new(&["Vantage Point", "Location"]);
    for (name, loc) in TABLE1 {
        t.row(&[name.to_string(), loc.to_string()]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_distinct_names() {
        let mut names: Vec<&str> = TABLE1.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
        assert_eq!(vp_name(0), "planetlab02.cs.washington.edu");
        assert_eq!(vp_name(7), vp_name(0), "wraps");
    }

    #[test]
    fn table_renders() {
        let t = render_table1();
        assert!(t.contains("cornell"));
        assert!(t.contains("Tokyo, Japan"));
    }
}
