//! §5 hints over §4 cluster worlds, and the hybrid factory.
//!
//! In the synthetic cluster worlds "sharing an upstream router" is
//! exactly "sharing an end-network", so the UCL registry reduces to an
//! end-network-keyed membership map: [`EnRegistry`]. The
//! [`HybridHintFactory`] combines that registry (at a configurable
//! deployment coverage) with any fallback factory — typically Meridian
//! — reproducing the paper's closing "use them in conjunction"
//! recommendation as one registry entry.

use np_core::experiment::{AlgoContext, AlgoFactory};
use np_core::hybrid::{HintSource, Hybrid};
use np_metric::{NearestPeerAlgo, PeerId};
use np_topology::ClusterWorld;
use np_util::rng::rng_for;
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// UCL hints in a cluster world: registered peers keyed by end-network
/// (= shared first upstream router).
pub struct EnRegistry {
    by_en: HashMap<usize, Vec<PeerId>>,
    en_of: HashMap<PeerId, usize>,
}

impl EnRegistry {
    /// Register a `coverage` fraction of `overlay` (uniformly at
    /// random, seed-deterministic). Every peer — registered or not —
    /// knows its own EN key, as every host knows its first-hop router.
    pub fn build(
        world: &ClusterWorld,
        overlay: &[PeerId],
        coverage: f64,
        seed: u64,
    ) -> EnRegistry {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0,1]");
        let mut rng = rng_for(seed, 0x48_59_42); // "HYB"
        let mut members = overlay.to_vec();
        members.shuffle(&mut rng);
        let n = (members.len() as f64 * coverage).round() as usize;
        let mut by_en: HashMap<usize, Vec<PeerId>> = HashMap::new();
        for &p in &members[..n] {
            by_en.entry(world.en_of(p)).or_default().push(p);
        }
        let en_of = world.peers().map(|p| (p, world.en_of(p))).collect();
        EnRegistry { by_en, en_of }
    }

    /// Number of registered peers.
    pub fn registered(&self) -> usize {
        // np-lint: allow(D1) — commutative usize sum; order cannot reach results
        self.by_en.values().map(Vec::len).sum()
    }
}

impl HintSource for EnRegistry {
    fn candidates(&self, target: PeerId) -> Vec<PeerId> {
        self.by_en
            .get(&self.en_of[&target])
            .cloned()
            .unwrap_or_default()
    }

    fn name(&self) -> &str {
        "ucl"
    }
}

/// Seed tag offset for the registry draw, kept distinct from the
/// fallback's stream (historical: the ext_hybrid binary used
/// `seed + 7`).
const REGISTRY_SEED_OFFSET: u64 = 7;

/// Factory: [`EnRegistry`] hints at a fixed coverage, any fallback.
pub struct HybridHintFactory<F: AlgoFactory> {
    name: String,
    coverage: f64,
    fallback: F,
}

impl<F: AlgoFactory> HybridHintFactory<F> {
    /// A hybrid registered as `name`, consulting an [`EnRegistry`]
    /// covering `coverage` of the overlay before falling back to
    /// `fallback`'s algorithm.
    pub fn new(name: impl Into<String>, coverage: f64, fallback: F) -> HybridHintFactory<F> {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0,1]");
        HybridHintFactory {
            name: name.into(),
            coverage,
            fallback,
        }
    }
}

impl<F: AlgoFactory> AlgoFactory for HybridHintFactory<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> String {
        format!(
            "UCL end-network registry at {:.0}% coverage, falling back to {}",
            self.coverage * 100.0,
            self.fallback.name()
        )
    }

    fn build<'a>(&self, ctx: &AlgoContext<'a>) -> Box<dyn NearestPeerAlgo + 'a> {
        let hints = EnRegistry::build(
            ctx.world,
            ctx.overlay,
            self.coverage,
            ctx.seed.wrapping_add(REGISTRY_SEED_OFFSET),
        );
        let fallback = self.fallback.build(ctx);
        Box::new(Hybrid::new(hints, fallback))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_core::experiment::RandomChoiceFactory;
    use np_metric::{Target, WorldStore};
    use np_topology::ClusterWorldSpec;
    use np_util::rng::rng_from;
    use np_util::Micros;

    fn world() -> ClusterWorld {
        ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 4,
                en_per_cluster: 8,
                peers_per_en: 2,
                delta: 0.2,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 5,
            },
            11,
        )
    }

    #[test]
    fn coverage_scales_registration() {
        let w = world();
        let overlay: Vec<PeerId> = w.peers().collect();
        let none = EnRegistry::build(&w, &overlay, 0.0, 1);
        let half = EnRegistry::build(&w, &overlay, 0.5, 1);
        let full = EnRegistry::build(&w, &overlay, 1.0, 1);
        assert_eq!(none.registered(), 0);
        assert_eq!(half.registered(), overlay.len() / 2);
        assert_eq!(full.registered(), overlay.len());
        // Full coverage: every peer's EN partner is a candidate.
        let p = overlay[0];
        assert!(full.candidates(p).contains(&p), "own EN includes self");
    }

    #[test]
    fn hybrid_factory_finds_partner_at_full_coverage() {
        let w = world();
        let matrix = w.to_matrix();
        // Hold the first peer out; its EN partner stays in the overlay.
        let overlay: Vec<PeerId> = w.peers().skip(1).collect();
        let target = w.peers().next().unwrap();
        let partner = w.en_partner(target).expect("2 peers per EN");
        let store: &dyn WorldStore = &matrix;
        let shared = np_core::experiment::BuildCache::new();
        let ctx = AlgoContext {
            store,
            world: &w,
            overlay: &overlay,
            seed: 3,
            threads: 1,
            shared: &shared,
        };
        let factory = HybridHintFactory::new("ucl+random", 1.0, RandomChoiceFactory);
        assert_eq!(factory.name(), "ucl+random");
        assert!(factory.description().contains("100%"));
        let algo = factory.build(&ctx);
        assert_eq!(algo.name(), "ucl+random");
        let t = Target::new(target, &matrix);
        let out = algo.find_nearest(&t, &mut rng_from(5));
        assert_eq!(out.found, partner, "full-coverage registry must hit the partner");
    }
}
