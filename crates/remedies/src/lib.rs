//! # np-remedies
//!
//! The paper's §5: mechanisms that add *topological* information to
//! nearest-peer discovery, because §2–§4 showed latency-only search
//! cannot penetrate the clustering condition.
//!
//! * [`ucl`] — the **Upstream Connectivity List** heuristic: each peer
//!   registers itself under the routers within `n` hops upstream (keys =
//!   router IPs) in a key-value map; peers sharing a close upstream
//!   router find each other directly, and latency annotations let them
//!   discard far candidates without probing. Includes the Figure 10 hop
//!   study and the §5 discovery-rate evaluation.
//! * [`prefix`] — the **IP-prefix** heuristic and its Figure 11
//!   false-positive/false-negative study (no sweet spot exists).
//! * [`multicast`] — approach 1: expanding-ring IP-multicast search
//!   within the end-network (works only where multicast is enabled and
//!   the network is a single multicast domain).
//! * [`central`] — approach 2: a per-end-network membership server.
//!
//! The registries run over any [`np_dht::KeyValueMap`] — the paper's
//! "perfect map" for evaluation, the Chord ring for deployment realism.

pub mod central;
pub mod cluster_hints;
pub mod multicast;
pub mod prefix;
pub mod ucl;

pub use cluster_hints::{EnRegistry, HybridHintFactory};
pub use prefix::PrefixRegistry;
pub use ucl::UclRegistry;
