//! The Upstream Connectivity List (UCL) remedy.
//!
//! Paper §5: *"a mapping is created for each upstream router and peers
//! that have the router in their UCLs: the key here is the IP address of
//! the upstream router, and the value the IP addresses of the peers
//! [...] we could also embed information about the latency between the
//! routers and the end-hosts. Two peers that share upstream routers can
//! now form a rough estimate of their latency to each other as the sum
//! of their latencies to the closest common router. Thus peers can
//! discard, without further probing, other peers that are estimated to
//! be too far away."*

use np_cluster::TraceGraph;
use np_dht::KeyValueMap;
use np_topology::{HostId, InternetModel, RouterId};
use np_util::binned::{BinScale, BinnedScatter};
use np_util::Micros;

/// Pack a `(peer, latency)` record into a map value.
fn pack(peer: HostId, lat: Micros) -> u64 {
    let lat32 = lat.as_us().min(u32::MAX as u64) as u32;
    (u64::from(peer.0) << 32) | u64::from(lat32)
}

/// Unpack a map value.
fn unpack(v: u64) -> (HostId, Micros) {
    (HostId((v >> 32) as u32), Micros(v & 0xFFFF_FFFF))
}

/// The peer-side view: which routers a peer tracks, at what latencies.
///
/// A peer learns its UCL "by running traceroutes to a few different
/// locations in the Internet": every outgoing path starts with the
/// peer's access tree, so the UCL is the first `n` *probe-responsive*
/// routers up the tree, with ping latencies.
pub fn ucl_of(world: &InternetModel, peer: HostId, n: usize) -> Vec<(RouterId, Micros)> {
    world
        .tree_path_to_core(world.attach_router(peer))
        .into_iter()
        .filter(|&r| world.router(r).responsive)
        .take(n)
        .map(|r| (r, world.rtt_host_router(peer, r)))
        .collect()
}

/// The UCL registry over a key-value map.
pub struct UclRegistry<'w, M: KeyValueMap> {
    world: &'w InternetModel,
    map: M,
    /// How many upstream routers each peer tracks.
    pub track: usize,
}

impl<'w, M: KeyValueMap> UclRegistry<'w, M> {
    pub fn new(world: &'w InternetModel, map: M, track: usize) -> Self {
        assert!(track >= 1);
        UclRegistry { world, map, track }
    }

    /// Register a peer: one mapping per tracked router.
    pub fn insert(&mut self, peer: HostId) {
        for (r, lat) in ucl_of(self.world, peer, self.track) {
            self.map.insert(u64::from(self.world.router(r).ip.0), pack(peer, lat));
        }
    }

    /// Remove a peer's mappings (departure).
    pub fn remove(&mut self, peer: HostId) {
        for (r, _) in ucl_of(self.world, peer, self.track) {
            self.map.remove_if(u64::from(self.world.router(r).ip.0), &mut |v| {
                unpack(v).0 == peer
            });
        }
    }

    /// Candidate peers for `peer`: everyone sharing a tracked router,
    /// with the latency *estimate* (sum of the two router latencies),
    /// deduplicated to the best estimate and sorted ascending.
    pub fn candidates(&mut self, peer: HostId) -> Vec<(HostId, Micros)> {
        let mut best: std::collections::HashMap<HostId, Micros> = std::collections::HashMap::new();
        for (r, my_lat) in ucl_of(self.world, peer, self.track) {
            for v in self.map.get(u64::from(self.world.router(r).ip.0)) {
                let (other, their_lat) = unpack(v);
                if other == peer {
                    continue;
                }
                let est = my_lat + their_lat;
                best.entry(other)
                    .and_modify(|e| *e = (*e).min(est))
                    .or_insert(est);
            }
        }
        // np-lint: allow(D1) — sorted by (estimate, host) on the next line; order cannot reach results
        let mut out: Vec<(HostId, Micros)> = best.into_iter().collect();
        out.sort_by_key(|&(h, est)| (est, h));
        out
    }

    /// Candidates estimated closer than `cap` (the discard-without-
    /// probing rule).
    pub fn candidates_within(&mut self, peer: HostId, cap: Micros) -> Vec<(HostId, Micros)> {
        let mut v = self.candidates(peer);
        v.retain(|&(_, est)| est <= cap);
        v
    }

    /// The underlying map (telemetry).
    pub fn map(&self) -> &M {
        &self.map
    }
}

/// Figure 10: `(inter-peer latency ms, router hop-length)` samples for
/// every peer pair within `radius` over the traceroute graph. Each
/// unordered pair is counted once.
pub fn hop_samples(tg: &TraceGraph, peers: &[HostId], radius: Micros) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &p in peers {
        for (q, d, hops) in tg.close_peers(p, radius) {
            if q.0 > p.0 {
                out.push((d.as_ms(), f64::from(hops)));
            }
        }
    }
    out
}

/// Figure 10's binned reduction (log-latency bins, hop percentiles).
pub fn hop_study(tg: &TraceGraph, peers: &[HostId], radius: Micros, bins: usize) -> BinnedScatter {
    BinnedScatter::build(&hop_samples(tg, peers, radius), bins, BinScale::Log)
}

/// One row of the §5 discovery evaluation.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryRow {
    /// Routers tracked per peer.
    pub track: usize,
    /// Fraction of peers (with a <`target` true neighbour) whose
    /// registry candidates include such a neighbour.
    pub success: f64,
    /// Mean candidates returned per query (probing cost before the
    /// estimate filter).
    pub mean_candidates: f64,
    /// Mean candidates surviving the 2×target estimate filter.
    pub mean_filtered: f64,
}

/// Evaluate discovery rates for `track = 1..=max_track`: can a peer find
/// some other peer within `target` latency through the registry alone?
///
/// Ground truth ("peer X has a neighbour closer than target") is decided
/// with the world's RTTs over the same `peers` population.
pub fn discovery_study<M: KeyValueMap>(
    world: &InternetModel,
    peers: &[HostId],
    target: Micros,
    max_track: usize,
    mut make_map: impl FnMut() -> M,
) -> Vec<DiscoveryRow> {
    // Ground truth neighbour sets (true RTT within target).
    let mut has_close: Vec<(HostId, Vec<HostId>)> = Vec::new();
    for (i, &p) in peers.iter().enumerate() {
        let mut close = Vec::new();
        for (j, &q) in peers.iter().enumerate() {
            if i != j && world.rtt(p, q) <= target {
                close.push(q);
            }
        }
        if !close.is_empty() {
            has_close.push((p, close));
        }
    }
    let mut rows = Vec::new();
    for track in 1..=max_track {
        let mut reg = UclRegistry::new(world, make_map(), track);
        for &p in peers {
            reg.insert(p);
        }
        let mut hits = 0usize;
        let mut total_cands = 0usize;
        let mut total_filtered = 0usize;
        for (p, close) in &has_close {
            let cands = reg.candidates(*p);
            total_cands += cands.len();
            let filtered = reg.candidates_within(*p, target.scale(2.0));
            total_filtered += filtered.len();
            if filtered.iter().any(|(h, _)| close.contains(h)) {
                hits += 1;
            }
        }
        let n = has_close.len().max(1) as f64;
        rows.push(DiscoveryRow {
            track,
            success: hits as f64 / n,
            mean_candidates: total_cands as f64 / n,
            mean_filtered: total_filtered as f64 / n,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_dht::{ChordMap, PerfectMap};
    use np_topology::WorldParams;

    fn world() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 47)
    }

    #[test]
    fn pack_roundtrip() {
        let (h, l) = unpack(pack(HostId(12345), Micros::from_ms(7.5)));
        assert_eq!(h, HostId(12345));
        assert_eq!(l, Micros::from_ms(7.5));
    }

    #[test]
    fn ucl_walks_up_the_tree() {
        let w = world();
        let peer = w.azureus_peers().next().expect("peers");
        let ucl = ucl_of(&w, peer, 4);
        assert!(!ucl.is_empty());
        // Latencies grow (weakly) as we go up.
        for pair in ucl.windows(2) {
            assert!(pair[0].1 <= pair[1].1 + Micros::from_ms(2.0));
        }
        // All tracked routers are responsive (a peer cannot learn
        // invisible routers from its traceroutes).
        for &(r, _) in &ucl {
            assert!(w.router(r).responsive);
        }
    }

    #[test]
    fn same_en_peers_find_each_other() {
        let w = world();
        // Two EN peers behind the same responsive gateway.
        let mut by_en = std::collections::HashMap::new();
        for p in w.azureus_peers() {
            if let Some(e) = w.end_net_of(p) {
                if w.router(w.end_nets[e.idx()].gateway).responsive {
                    by_en.entry(e).or_insert_with(Vec::new).push(p);
                }
            }
        }
        let pair = by_en.values().find(|v| v.len() >= 2).expect("shared EN");
        let (a, b) = (pair[0], pair[1]);
        let mut reg = UclRegistry::new(&w, PerfectMap::new(), 3);
        reg.insert(a);
        reg.insert(b);
        let cands = reg.candidates(a);
        let hit = cands.iter().find(|(h, _)| *h == b).expect("b discovered");
        // Estimate = sum of both LAN latencies: sub-ms.
        assert!(hit.1 < Micros::from_ms(2.0), "estimate {}", hit.1);
    }

    #[test]
    fn estimates_discard_far_candidates() {
        let w = world();
        let peers: Vec<HostId> = w.azureus_peers().take(400).collect();
        let mut reg = UclRegistry::new(&w, PerfectMap::new(), 3);
        for &p in &peers {
            reg.insert(p);
        }
        let p = peers[0];
        for (other, est) in reg.candidates_within(p, Micros::from_ms_u64(10)) {
            // The estimate bounds the truth loosely from above for
            // same-subtree peers (triangle through the common router).
            let truth = w.rtt(p, other);
            assert!(
                truth <= est + Micros::from_ms(2.0),
                "estimate {est} far below truth {truth}"
            );
        }
    }

    #[test]
    fn removal_retracts_mappings() {
        let w = world();
        let peers: Vec<HostId> = w.azureus_peers().take(50).collect();
        let mut reg = UclRegistry::new(&w, PerfectMap::new(), 3);
        for &p in &peers {
            reg.insert(p);
        }
        let victim = peers[1];
        reg.remove(victim);
        for &p in &peers {
            if p != victim {
                assert!(
                    !reg.candidates(p).iter().any(|(h, _)| *h == victim),
                    "victim still discoverable"
                );
            }
        }
    }

    #[test]
    fn discovery_improves_with_track_depth() {
        let w = world();
        let peers: Vec<HostId> = w.azureus_peers().step_by(7).take(300).collect();
        let rows = discovery_study(&w, &peers, Micros::from_ms_u64(5), 4, PerfectMap::new);
        assert_eq!(rows.len(), 4);
        // Success is monotone non-decreasing in tracked routers.
        for pair in rows.windows(2) {
            assert!(
                pair[1].success >= pair[0].success - 1e-9,
                "success dropped: {pair:?}"
            );
        }
    }

    #[test]
    fn chord_backed_registry_agrees_with_perfect() {
        let w = world();
        let peers: Vec<HostId> = w.azureus_peers().take(60).collect();
        let mut perfect = UclRegistry::new(&w, PerfectMap::new(), 3);
        let mut chord = UclRegistry::new(&w, ChordMap::new(32, 5), 3);
        for &p in &peers {
            perfect.insert(p);
            chord.insert(p);
        }
        for &p in peers.iter().take(10) {
            assert_eq!(perfect.candidates(p), chord.candidates(p));
        }
        assert!(chord.map().mean_hops() >= 1.0);
    }
}
