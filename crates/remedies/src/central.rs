//! Approach 2: a per-end-network membership server.
//!
//! Paper §5: *"a central server inside each end-network that tracks all
//! peers inside the end-network that are currently in the P2P system
//! [...] it needs a sufficiently large number of peers within each
//! end-network to justify the setup of the membership tracking
//! server."* The registry is exact where deployed; the evaluation knob
//! is the deployment threshold.

use np_topology::{EndNetId, HostId, InternetModel};
use std::collections::HashMap;

/// The network-local membership service.
pub struct CentralRegistry<'w> {
    world: &'w InternetModel,
    members: HashMap<EndNetId, Vec<HostId>>,
    /// ENs with at least this many members run a server.
    pub deploy_threshold: usize,
}

impl<'w> CentralRegistry<'w> {
    pub fn new(world: &'w InternetModel, deploy_threshold: usize) -> Self {
        CentralRegistry {
            world,
            members: HashMap::new(),
            deploy_threshold,
        }
    }

    /// A peer joins the system (registers with its network's server).
    pub fn join(&mut self, peer: HostId) {
        if let Some(en) = self.world.end_net_of(peer) {
            self.members.entry(en).or_default().push(peer);
        }
    }

    /// A peer leaves.
    pub fn leave(&mut self, peer: HostId) {
        if let Some(en) = self.world.end_net_of(peer) {
            if let Some(v) = self.members.get_mut(&en) {
                v.retain(|&p| p != peer);
            }
        }
    }

    /// Local peers of `peer`'s network, when a server is justified
    /// there. `None` = no server (home user, or too few members).
    pub fn local_peers(&self, peer: HostId) -> Option<Vec<HostId>> {
        let en = self.world.end_net_of(peer)?;
        let v = self.members.get(&en)?;
        if v.len() < self.deploy_threshold {
            return None;
        }
        Some(v.iter().copied().filter(|&p| p != peer).collect())
    }

    /// Number of networks that meet the deployment threshold.
    pub fn deployed_servers(&self) -> usize {
        self.members
            .values() // np-lint: allow(D1) — commutative count; order cannot reach results
            .filter(|v| v.len() >= self.deploy_threshold)
            .count()
    }

    /// Fraction of registered peers covered by a deployed server.
    pub fn coverage(&self) -> f64 {
        // np-lint: allow(D1) — commutative usize sum; order cannot reach results
        let total: usize = self.members.values().map(|v| v.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let covered: usize = self
            .members
            .values() // np-lint: allow(D1) — commutative usize sum; order cannot reach results
            .filter(|v| v.len() >= self.deploy_threshold)
            .map(|v| v.len())
            .sum();
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::WorldParams;

    fn setup() -> (InternetModel, Vec<HostId>) {
        let world = InternetModel::generate(WorldParams::quick_scale(), 61);
        let peers: Vec<HostId> = world.azureus_peers().collect();
        (world, peers)
    }

    #[test]
    fn finds_exactly_the_en_mates() {
        let (world, peers) = setup();
        let mut reg = CentralRegistry::new(&world, 2);
        for &p in &peers {
            reg.join(p);
        }
        let mut checked = 0;
        for &p in &peers {
            let Some(local) = reg.local_peers(p) else { continue };
            for q in &local {
                assert_eq!(world.end_net_of(*q), world.end_net_of(p));
            }
            checked += 1;
            if checked > 100 {
                break;
            }
        }
        assert!(checked > 10, "no server ever justified");
    }

    #[test]
    fn home_users_are_never_covered() {
        let (world, peers) = setup();
        let mut reg = CentralRegistry::new(&world, 1);
        for &p in &peers {
            reg.join(p);
        }
        let home = peers
            .iter()
            .find(|&&p| world.end_net_of(p).is_none())
            .expect("home peers exist");
        assert_eq!(reg.local_peers(*home), None);
    }

    #[test]
    fn threshold_trades_servers_for_coverage() {
        let (world, peers) = setup();
        let mut reg = CentralRegistry::new(&world, 1);
        for &p in &peers {
            reg.join(p);
        }
        let servers_low = reg.deployed_servers();
        let cover_low = reg.coverage();
        reg.deploy_threshold = 5;
        let servers_high = reg.deployed_servers();
        let cover_high = reg.coverage();
        assert!(servers_high < servers_low);
        assert!(cover_high <= cover_low);
        assert!(cover_low > 0.9, "threshold 1 must cover everyone in an EN");
    }

    #[test]
    fn leave_removes_peer() {
        let (world, peers) = setup();
        let mut reg = CentralRegistry::new(&world, 1);
        let en_peer = peers
            .iter()
            .copied()
            .find(|&p| world.end_net_of(p).is_some())
            .expect("EN peer exists");
        reg.join(en_peer);
        reg.leave(en_peer);
        assert_eq!(reg.local_peers(en_peer), Some(Vec::new()).filter(|_| false).or(None));
    }
}
