//! The IP-prefix remedy and its error study (paper §5, Figure 11).
//!
//! The registry keys peers by a fixed-length prefix of their IP address.
//! The evaluation measures, per peer and prefix length, the
//! false-positive rate (peers sharing the prefix but farther than 10 ms)
//! and false-negative rate (peers within 10 ms but with a different
//! prefix) — the paper finds no sweet spot, and multihomed
//! (provider-independent) networks keep the false-negative floor up.

use np_cluster::TraceGraph;
use np_dht::KeyValueMap;
use np_topology::{HostId, InternetModel};
use np_util::Micros;
use std::collections::{HashMap, HashSet};

/// The registry mechanism itself.
pub struct PrefixRegistry<'w, M: KeyValueMap> {
    world: &'w InternetModel,
    map: M,
    /// Prefix length in bits.
    pub len: u8,
}

impl<'w, M: KeyValueMap> PrefixRegistry<'w, M> {
    pub fn new(world: &'w InternetModel, map: M, len: u8) -> Self {
        assert!((1..=32).contains(&len));
        PrefixRegistry { world, map, len }
    }

    fn key(&self, peer: HostId) -> u64 {
        u64::from(self.world.host(peer).ip.prefix_bits(self.len))
    }

    /// Register a peer under its prefix.
    pub fn insert(&mut self, peer: HostId) {
        self.map.insert(self.key(peer), u64::from(peer.0));
    }

    /// Peers sharing the prefix (excluding the querier).
    pub fn candidates(&mut self, peer: HostId) -> Vec<HostId> {
        self.map
            .get(self.key(peer))
            .into_iter()
            .map(|v| HostId(v as u32))
            .filter(|&h| h != peer)
            .collect()
    }
}

/// Per-length error rates (medians across peers).
#[derive(Debug, Clone, Copy)]
pub struct ErrorRow {
    pub prefix_len: u8,
    pub false_positive: f64,
    pub false_negative: f64,
    /// Peers contributing (those with ≥1 close neighbour).
    pub population: usize,
}

/// The Figure 11 study: close sets come from the traceroute graph
/// (≤ `radius`), prefixes from the peers' IPs.
pub fn error_study(
    world: &InternetModel,
    tg: &TraceGraph,
    peers: &[HostId],
    radius: Micros,
    lengths: impl IntoIterator<Item = u8>,
) -> Vec<ErrorRow> {
    // Close sets once.
    let close: HashMap<HostId, HashSet<HostId>> = peers
        .iter()
        .map(|&p| {
            (
                p,
                tg.close_peers(p, radius)
                    .into_iter()
                    .map(|(q, _, _)| q)
                    .collect(),
            )
        })
        .collect();
    let contributors: Vec<HostId> = peers
        .iter()
        .copied()
        .filter(|p| !close[p].is_empty())
        .collect();
    let mut rows = Vec::new();
    for len in lengths {
        // Bucket sizes by prefix.
        let mut buckets: HashMap<u32, usize> = HashMap::new();
        for &p in peers {
            *buckets.entry(world.host(p).ip.prefix_bits(len)).or_insert(0) += 1;
        }
        let mut fps = Vec::new();
        let mut fns = Vec::new();
        for &p in &contributors {
            let my_bits = world.host(p).ip.prefix_bits(len);
            let sharing_total = buckets[&my_bits] - 1;
            let close_set = &close[&p];
            let close_sharing = close_set
                .iter()
                .filter(|q| world.host(**q).ip.prefix_bits(len) == my_bits)
                .count();
            let far_total = peers.len() - 1 - close_set.len();
            let fp_num = sharing_total - close_sharing;
            if far_total > 0 {
                fps.push(fp_num as f64 / far_total as f64);
            }
            fns.push((close_set.len() - close_sharing) as f64 / close_set.len() as f64);
        }
        rows.push(ErrorRow {
            prefix_len: len,
            false_positive: np_util::stats::median(&fps).unwrap_or(0.0),
            false_negative: np_util::stats::median(&fns).unwrap_or(0.0),
            population: contributors.len(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_dht::PerfectMap;
    use np_topology::WorldParams;

    fn setup() -> (InternetModel, Vec<HostId>, TraceGraph) {
        let world = InternetModel::generate(WorldParams::quick_scale(), 53);
        let peers: Vec<HostId> = world
            .azureus_peers()
            .filter(|&p| world.host(p).tcp_responsive || world.host(p).icmp_responsive)
            .collect();
        let tg = TraceGraph::build(&world, &peers, 53);
        (world, peers, tg)
    }

    #[test]
    fn registry_returns_prefix_mates() {
        let (world, peers, _) = setup();
        let mut reg = PrefixRegistry::new(&world, PerfectMap::new(), 24);
        for &p in peers.iter().take(500) {
            reg.insert(p);
        }
        let p = peers[0];
        for cand in reg.candidates(p) {
            assert!(world.host(cand).ip.shares_prefix(world.host(p).ip, 24));
            assert_ne!(cand, p);
        }
    }

    #[test]
    fn fp_falls_and_fn_rises_with_length() {
        let (world, peers, tg) = setup();
        let rows = error_study(
            &world,
            &tg,
            &peers,
            Micros::from_ms_u64(10),
            [8u8, 16, 24],
        );
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].false_positive > rows[2].false_positive,
            "FP must fall with longer prefixes: {rows:?}"
        );
        assert!(
            rows[0].false_negative <= rows[2].false_negative,
            "FN must rise with longer prefixes: {rows:?}"
        );
        assert!(rows[0].population > 20, "population {}", rows[0].population);
    }

    #[test]
    fn no_sweet_spot_exists() {
        // The paper's conclusion: at every length, FP > 0.1 or FN
        // substantially > 0.
        let (world, peers, tg) = setup();
        let rows = error_study(
            &world,
            &tg,
            &peers,
            Micros::from_ms_u64(10),
            (8..=24).step_by(2).map(|l| l as u8),
        );
        let sweet = rows
            .iter()
            .find(|r| r.false_positive < 0.05 && r.false_negative < 0.05);
        assert!(sweet.is_none(), "unexpected sweet spot: {sweet:?}");
    }

    #[test]
    fn rates_are_valid_probabilities() {
        let (world, peers, tg) = setup();
        for r in error_study(&world, &tg, &peers, Micros::from_ms_u64(10), [12u8, 20]) {
            assert!((0.0..=1.0).contains(&r.false_positive));
            assert!((0.0..=1.0).contains(&r.false_negative));
        }
    }
}
