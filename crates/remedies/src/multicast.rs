//! Approach 1: expanding-ring IP-multicast search in the end-network.
//!
//! Paper §5: *"a simple expanding search within each end-network using
//! IP multicast [...] This approach however assumes that IP multicast is
//! enabled within each end-network and that messages multicast from one
//! host inside the end-network \[are\] capable of reaching any other host
//! in the end-network; the latter assumption may often be invalid in
//! large end-networks that are themselves composed of multiple LANs or
//! VLANs."*
//!
//! Both failure modes are modelled: a per-end-network multicast-enabled
//! flag, and VLAN partitioning in large networks (hosts are reachable
//! only within their own VLAN segment).

use np_topology::{EndNetId, HostId, InternetModel};
use np_util::rng::splitmix64;

/// Deterministic per-EN multicast support (fraction `p_enabled` of ENs).
fn multicast_enabled(en: EndNetId, p_enabled: f64, salt: u64) -> bool {
    (splitmix64(u64::from(en.0) ^ salt) as f64 / u64::MAX as f64) < p_enabled
}

/// VLAN segment of a host inside its end-network: networks with more
/// than `vlan_size` member hosts split into segments of that size.
fn vlan_of(host: HostId, vlan_size: usize) -> usize {
    // Hosts are assigned to VLANs round-robin by id (a stand-in for
    // per-department segmentation).
    host.0 as usize / vlan_size.max(1) % 16
}

/// Result of a multicast search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McastOutcome {
    /// Found a peer in the same multicast domain.
    Found(HostId),
    /// The end-network has no multicast (or the host is not in one).
    NoMulticast,
    /// Multicast works but no other system peer was reachable.
    NothingFound,
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct McastConfig {
    /// Fraction of end-networks with multicast enabled.
    pub p_enabled: f64,
    /// VLAN segment size (hosts); crossing segments fails.
    pub vlan_size: usize,
    /// Determinism salt.
    pub salt: u64,
}

impl Default for McastConfig {
    fn default() -> Self {
        McastConfig {
            p_enabled: 0.6,
            vlan_size: 200,
            salt: 0x4D43_4153,
        }
    }
}

/// Run the expanding search for `seeker` against the current system
/// membership.
pub fn search(
    world: &InternetModel,
    seeker: HostId,
    members: &[HostId],
    cfg: McastConfig,
) -> McastOutcome {
    let Some(en) = world.end_net_of(seeker) else {
        return McastOutcome::NoMulticast; // home users have no EN multicast
    };
    if !multicast_enabled(en, cfg.p_enabled, cfg.salt) {
        return McastOutcome::NoMulticast;
    }
    let my_vlan = vlan_of(seeker, cfg.vlan_size);
    let found = members
        .iter()
        .copied()
        .filter(|&m| m != seeker)
        .find(|&m| world.end_net_of(m) == Some(en) && vlan_of(m, cfg.vlan_size) == my_vlan);
    match found {
        Some(h) => McastOutcome::Found(h),
        None => McastOutcome::NothingFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_topology::WorldParams;

    #[test]
    fn finds_en_mates_when_enabled() {
        let world = InternetModel::generate(WorldParams::quick_scale(), 59);
        // Collect EN-attached azureus peers grouped by EN.
        let mut by_en = std::collections::HashMap::new();
        for p in world.azureus_peers() {
            if let Some(e) = world.end_net_of(p) {
                by_en.entry(e).or_insert_with(Vec::new).push(p);
            }
        }
        let members: Vec<HostId> = by_en.values().flatten().copied().collect();
        let cfg = McastConfig::default();
        let mut found = 0;
        let mut nomc = 0;
        for group in by_en.values().filter(|g| g.len() >= 2) {
            match search(&world, group[0], &members, cfg) {
                McastOutcome::Found(h) => {
                    assert_eq!(world.end_net_of(h), world.end_net_of(group[0]));
                    found += 1;
                }
                McastOutcome::NoMulticast => nomc += 1,
                McastOutcome::NothingFound => {}
            }
        }
        assert!(found > 0, "multicast never succeeded");
        assert!(nomc > 0, "the disabled-multicast failure mode never fired");
    }

    #[test]
    fn home_users_cannot_multicast() {
        let world = InternetModel::generate(WorldParams::quick_scale(), 59);
        let home = world
            .azureus_peers()
            .find(|&p| world.end_net_of(p).is_none())
            .expect("home peers exist");
        assert_eq!(
            search(&world, home, &[home], McastConfig::default()),
            McastOutcome::NoMulticast
        );
    }

    #[test]
    fn vlan_partitioning_blocks_large_networks() {
        // Hosts in different VLAN segments never find each other even
        // with multicast on.
        let a = HostId(10);
        let b = HostId(5_000); // different round-robin segment
        assert_ne!(vlan_of(a, 200), vlan_of(b, 200));
    }
}
