//! The five determinism & concurrency rules, as token-stream passes.
//!
//! Each rule enforces one clause of the workspace's written
//! determinism contract (README "Determinism contract"):
//!
//! * **D1 — no map iteration on result paths.** Iterating a `HashMap`
//!   / `HashSet` (`iter`, `keys`, `values`, `into_iter`, `drain`,
//!   `retain`, `for … in map`) in non-test code is the exact bug class
//!   that bit Tapestry in PR 7: iteration order is randomized per
//!   process, so any fold over it that is not followed by a total sort
//!   leaks scheduling into `PaperMetrics`.
//! * **D2 — no ambient clocks.** `Instant::now` / `SystemTime` outside
//!   the allowlisted timing-only modules (engine busy-time, serve
//!   pacing, bench chrome) puts wall-clock on a result path.
//! * **D3 — globally unique RNG stream tags.** Every `*_TAG: u64`
//!   const fed to `sub_seed` / `item_seed` must be workspace-unique:
//!   two subsystems sharing a tag value draw *correlated* streams.
//! * **D4 — documented `unsafe`.** Every `unsafe` token is immediately
//!   preceded by a `// SAFETY:` comment.
//! * **D5 — lock-acquisition order.** The documented mutex→slot order
//!   for `HierarchicalWorld`'s `BlockCache` (`resident` accounting
//!   mutex before any `slots[…]` RwLock): any function that acquires
//!   them inverted is a deadlock candidate against the evictor.
//!
//! All passes are *lexical*: they see tokens, not types. The
//! identifier heuristics (which bindings are map-typed, which
//! receivers are locks) are tuned to this workspace's idiom and
//! documented per rule; false positives are suppressed at the site
//! with `// np-lint: allow(Dn) — reason` (reason mandatory, ≥ 10
//! chars — see [`parse_allow`]).

use crate::lexer::{TokKind, Token};
use std::collections::BTreeSet;

/// Rule identifiers. `A0` is the meta-rule: an `np-lint: allow`
/// comment that is malformed or carries no justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    D1,
    D2,
    D3,
    D4,
    D5,
    A0,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::A0 => "A0",
        }
    }

    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "A0" => Some(Rule::A0),
            _ => None,
        }
    }

    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "HashMap/HashSet iteration on a non-test result path",
            Rule::D2 => "ambient wall-clock read outside the timing allowlist",
            Rule::D3 => "RNG stream tag value collides with another *_TAG const",
            Rule::D4 => "`unsafe` without an immediately preceding `// SAFETY:` comment",
            Rule::D5 => "lock acquisition inverts the declared mutex->slot order",
            Rule::A0 => "np-lint allow comment without a usable justification",
        }
    }
}

/// One finding, pre- or post-suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub msg: String,
    pub hint: String,
}

/// A parsed `// np-lint: allow(Dn) — reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: usize,
    /// End line of the comment (same as `line` for `//` comments).
    pub end_line: usize,
    pub rule: Option<Rule>,
    pub reason_len: usize,
}

/// A `*_TAG: u64` const definition (the D3 registry's unit).
#[derive(Debug, Clone)]
pub struct TagDef {
    pub name: String,
    pub value: Option<u64>,
    pub value_text: String,
    pub file: String,
    pub line: usize,
    pub is_test: bool,
}

/// Everything one file contributes before workspace-level aggregation.
#[derive(Debug, Default)]
pub struct FileLint {
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
    pub tags: Vec<TagDef>,
}

/// Map-type names D1 tracks.
const MAP_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods D1 flags on map-typed receivers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// The declared lock order D5 enforces, earliest first: a receiver
/// containing `resident` (the BlockCache accounting mutex) must be
/// acquired before one containing `slots` (a per-shard RwLock) within
/// one function. See `crates/metric/src/hierarchical.rs`.
const LOCK_ORDER: &[&str] = &["resident", "slots"];

/// Lock-acquiring method names D5 watches.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Minimum justification length (characters after the rule id) for an
/// allow comment to count as reasoned.
pub const MIN_ALLOW_REASON: usize = 10;

/// Parse an allow comment out of raw comment text, if present.
/// Syntax: `np-lint: allow(D1) — reason…` (the dash is decorative;
/// anything after the closing paren, stripped of separator
/// punctuation, is the reason).
pub fn parse_allow(text: &str, line: usize, end_line: usize) -> Option<Allow> {
    let idx = text.find("np-lint:")?;
    let rest = text[idx + "np-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = Rule::from_id(rest[..close].trim());
    let reason: String = rest[close + 1..]
        .trim_start_matches(|c: char| {
            c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == ','
        })
        .trim()
        .to_string();
    Some(Allow {
        line,
        end_line,
        rule,
        reason_len: reason.chars().count(),
    })
}

/// Analyse one file's tokens. `rel` is the workspace-relative path
/// (diagnostics + D2 allowlisting key), `is_test_file` marks whole
/// files under `tests/` / `benches/` / `examples/`, and
/// `d2_allowlisted` marks the timing-only module set.
pub fn lint_tokens(
    rel: &str,
    toks: &[Token],
    is_test_file: bool,
    d2_allowlisted: bool,
) -> FileLint {
    let mut out = FileLint::default();

    // Comment-derived facts: allow comments, SAFETY lines, and which
    // lines are comment lines at all (D4 scans upward through them).
    let mut comment_lines: BTreeSet<usize> = BTreeSet::new();
    let mut safety_lines: BTreeSet<usize> = BTreeSet::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        let span = t.text.matches('\n').count();
        let end = t.line + span;
        for l in t.line..=end {
            comment_lines.insert(l);
        }
        if t.text.contains("SAFETY:") {
            for l in t.line..=end {
                safety_lines.insert(l);
            }
        }
        // Doc comments (`///`, `//!`, `/**`) are prose — an allow
        // example inside documentation must not register (or trip A0).
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        if let Some(a) = parse_allow(&t.text, t.line, end) {
            if a.rule.is_none() || a.reason_len < MIN_ALLOW_REASON {
                out.findings.push(Finding {
                    rule: Rule::A0,
                    file: rel.to_string(),
                    line: t.line,
                    msg: if a.rule.is_none() {
                        "allow comment names no known rule id".to_string()
                    } else {
                        "allow comment has no justification".to_string()
                    },
                    hint: format!(
                        "write `// np-lint: allow(D1) — why the order cannot reach results` \
                         (reason >= {MIN_ALLOW_REASON} chars)"
                    ),
                });
            }
            out.allows.push(a);
        }
    }

    // Code tokens (comments stripped) drive every other pass.
    let code: Vec<&Token> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();

    // `#[cfg(test)] mod … { … }` spans: D1/D2/D3/D5 are about result
    // paths, which test modules are not on.
    let test_spans = cfg_test_spans(&code);
    let in_test = |line: usize| {
        is_test_file || test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    };

    // ---- D1: map iteration ------------------------------------------------
    let map_names = collect_map_names(&code);
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Method-call form: `recv.iter()` etc.
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && code[i - 1].is_punct('.')
            && i + 1 < code.len()
            && code[i + 1].is_punct('(')
        {
            let chain = receiver_chain(&code, i as isize - 2);
            let matched = chain
                .iter()
                .find(|(n, behind)| !behind && map_names.contains(n))
                .map(|(n, _)| n);
            if let (Some(recv), false) = (matched, in_test(t.line)) {
                out.findings.push(Finding {
                    rule: Rule::D1,
                    file: rel.to_string(),
                    line: t.line,
                    msg: format!(
                        "`.{}()` iterates map-typed `{}` — HashMap order is per-process random",
                        t.text, recv
                    ),
                    hint: "iterate a sorted snapshot (collect + sort by a total key) or keep a \
                           Vec side-ledger in insertion order"
                        .to_string(),
                });
            }
        }
        // `for pat in [&[mut]] map` form.
        if t.text == "for" {
            if let Some((line, name)) = for_over_map(&code, i, &map_names) {
                if !in_test(line) {
                    out.findings.push(Finding {
                        rule: Rule::D1,
                        file: rel.to_string(),
                        line,
                        msg: format!(
                            "`for … in {name}` iterates a map — HashMap order is per-process random"
                        ),
                        hint: "iterate a sorted snapshot (collect + sort by a total key) or keep \
                               a Vec side-ledger in insertion order"
                            .to_string(),
                    });
                }
            }
        }
    }

    // ---- D2: ambient clocks ----------------------------------------------
    if !d2_allowlisted {
        for i in 0..code.len() {
            let t = code[i];
            if t.kind != TokKind::Ident || in_test(t.line) {
                continue;
            }
            let hit = (t.text == "Instant"
                && i + 3 < code.len()
                && code[i + 1].is_punct(':')
                && code[i + 2].is_punct(':')
                && code[i + 3].is_ident("now"))
                || t.text == "SystemTime";
            if hit {
                out.findings.push(Finding {
                    rule: Rule::D2,
                    file: rel.to_string(),
                    line: t.line,
                    msg: format!("`{}` read outside the timing allowlist", t.text),
                    hint: "results must be pure in (spec, seed); keep clocks to wall-clock \
                           telemetry and annotate, or move the code into an allowlisted module"
                        .to_string(),
                });
            }
        }
    }

    // ---- D3: tag registry (collisions are judged workspace-wide) ---------
    for i in 0..code.len() {
        if !code[i].is_ident("const") {
            continue;
        }
        let (Some(name_t), Some(colon), Some(ty), Some(eq), Some(val)) = (
            code.get(i + 1),
            code.get(i + 2),
            code.get(i + 3),
            code.get(i + 4),
            code.get(i + 5),
        ) else {
            continue;
        };
        if name_t.kind == TokKind::Ident
            && name_t.text.ends_with("_TAG")
            && colon.is_punct(':')
            && ty.is_ident("u64")
            && eq.is_punct('=')
            && val.kind == TokKind::Number
        {
            out.tags.push(TagDef {
                name: name_t.text.clone(),
                value: parse_u64_literal(&val.text),
                value_text: val.text.clone(),
                file: rel.to_string(),
                line: name_t.line,
                is_test: in_test(name_t.line),
            });
        }
    }

    // ---- D4: documented unsafe -------------------------------------------
    for t in code.iter().filter(|t| t.is_ident("unsafe")) {
        // Accept SAFETY on the unsafe line itself (trailing) or on the
        // contiguous comment block immediately above.
        let mut ok = safety_lines.contains(&t.line);
        let mut l = t.line.saturating_sub(1);
        while !ok && l > 0 && comment_lines.contains(&l) {
            if safety_lines.contains(&l) {
                ok = true;
            }
            l -= 1;
        }
        if !ok {
            out.findings.push(Finding {
                rule: Rule::D4,
                file: rel.to_string(),
                line: t.line,
                msg: "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
                hint: "state the invariant that makes this sound in a `// SAFETY: …` comment \
                       directly above the unsafe code"
                    .to_string(),
            });
        }
    }

    // ---- D5: lock order ---------------------------------------------------
    for (body_start, body_end) in fn_bodies(&code) {
        let mut acquisitions: Vec<(usize, usize)> = Vec::new(); // (order class, line)
        for i in body_start..body_end {
            let t = code[i];
            if t.kind == TokKind::Ident
                && LOCK_METHODS.contains(&t.text.as_str())
                && i >= 2
                && code[i - 1].is_punct('.')
                && i + 1 < code.len()
                && code[i + 1].is_punct('(')
            {
                let chain = receiver_chain(&code, i as isize - 2);
                if let Some(class) = LOCK_ORDER
                    .iter()
                    .position(|n| chain.iter().any(|(c, _)| c == n))
                {
                    acquisitions.push((class, t.line));
                }
            }
        }
        for w in 0..acquisitions.len() {
            let (c_late, _) = acquisitions[w];
            if let Some(&(c_early, line)) = acquisitions[w + 1..]
                .iter()
                .find(|&&(c, _)| c < c_late)
            {
                if in_test(line) {
                    continue;
                }
                out.findings.push(Finding {
                    rule: Rule::D5,
                    file: rel.to_string(),
                    line,
                    msg: format!(
                        "`{}` lock acquired after `{}` — inverts the declared {} order",
                        LOCK_ORDER[c_early],
                        LOCK_ORDER[c_late],
                        LOCK_ORDER.join("->")
                    ),
                    hint: "acquire the accounting mutex before any slot lock (or drop the slot \
                           guard first and annotate why)"
                        .to_string(),
                });
                break; // one finding per function is enough to act on
            }
        }
    }

    out
}

/// Parse a Rust integer literal (hex or decimal, `_` separators,
/// optional type suffix) into a u64.
pub fn parse_u64_literal(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        // A type suffix like `u64` starts with a non-hex char ('u'),
        // so take_while cleanly strips it.
        u64::from_str_radix(&digits, 16).ok()
    } else {
        let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }
}

/// Bindings/fields/params whose declared or constructed type is a map.
///
/// Two anchored patterns, walked *backwards* from each `HashMap` /
/// `HashSet` token (after skipping a `std::collections::`-style path
/// prefix and `&`/`mut`):
///
/// * `name : [&[mut]] [path::]HashMap…` — let annotations, struct
///   fields, fn params;
/// * `name = [path::]HashMap::new()/with_capacity/from…` —
///   initializers without an annotation.
///
/// A map nested inside another generic (`Vec<HashMap<…>>`) walks back
/// to `<` or `,` and is deliberately not recorded: iterating the outer
/// collection is order-safe.
fn collect_map_names(code: &[&Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        if !(code[i].kind == TokKind::Ident && MAP_TYPES.contains(&code[i].text.as_str())) {
            continue;
        }
        let mut j = i as isize - 1;
        // Skip `path ::` prefixes (`std :: collections ::`).
        loop {
            if j >= 1 && code[j as usize].is_punct(':') && code[(j - 1) as usize].is_punct(':') {
                j -= 2;
                if j >= 0 && code[j as usize].kind == TokKind::Ident {
                    j -= 1;
                }
            } else {
                break;
            }
        }
        // Skip `&`, `mut`, lifetimes.
        while j >= 0
            && (code[j as usize].is_punct('&')
                || code[j as usize].is_ident("mut")
                || code[j as usize].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j < 1 {
            continue;
        }
        let (anchor, name) = (code[j as usize], code[(j - 1) as usize]);
        if (anchor.is_punct(':') || anchor.is_punct('=')) && name.kind == TokKind::Ident {
            names.insert(name.text.clone());
        }
    }
    names
}

/// Walk a `.method()` receiver chain backwards from `j` (the token
/// before the `.`), collecting identifier segments. Handles `self.x`,
/// `a.b.c`, and indexing `slots[v]`; stops at anything else (a call
/// result like `f().iter()` yields an empty chain — the lexical pass
/// cannot type it). The *last* element is the outermost receiver.
///
/// Each segment carries `behind_index: bool` — whether an `[…]` index
/// sits between it and the method. D1 must ignore those
/// (`samples[&k][i].iter()` iterates a *value* of the map, which is
/// order-safe if the value type is), while D5 must keep them
/// (`slots[v].write()` locks the slot, not the index).
fn receiver_chain(code: &[&Token], mut j: isize) -> Vec<(String, bool)> {
    let mut chain = Vec::new();
    let mut behind_index = false;
    while j >= 0 {
        let t = code[j as usize];
        match t.kind {
            TokKind::Ident => {
                chain.push((t.text.clone(), behind_index));
                j -= 1;
                if j >= 0 && code[j as usize].is_punct('.') {
                    j -= 1;
                    continue;
                }
                break;
            }
            TokKind::Punct if t.is_punct(']') => {
                // Skip the balanced index expression.
                let mut depth = 1;
                j -= 1;
                while j >= 0 && depth > 0 {
                    if code[j as usize].is_punct(']') {
                        depth += 1;
                    } else if code[j as usize].is_punct('[') {
                        depth -= 1;
                    }
                    j -= 1;
                }
                behind_index = true;
                continue;
            }
            _ => break,
        }
    }
    chain
}

/// Detect `for pat in [&[mut]] <simple map expr> {` starting at the
/// `for` token; returns (line, receiver name) on a hit. Bails on any
/// call in the iterated expression (can't be typed lexically) and on
/// `impl X for Y` (no top-level `in`).
fn for_over_map(code: &[&Token], for_idx: usize, map_names: &BTreeSet<String>) -> Option<(usize, String)> {
    // Find the top-level `in` before the loop body's `{`.
    let mut depth = 0isize;
    let mut in_idx = None;
    for i in for_idx + 1..code.len() {
        let t = code[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            break;
        } else if depth == 0 && t.is_ident("in") {
            in_idx = Some(i);
            break;
        }
    }
    let in_idx = in_idx?;
    // Expression tokens from `in` to the body `{` at depth 0. An
    // index group *after* the candidate (`for x in &map[&k]`) means
    // the loop iterates a map *value*, not the map — skip it.
    let mut last_ident: Option<&Token> = None;
    let mut indexed_after = false;
    let mut depth = 0isize;
    for i in in_idx + 1..code.len() {
        let t = code[i];
        if t.is_punct('(') {
            return None; // a call — not a bare map binding
        }
        if t.is_punct('[') {
            if depth == 0 && last_ident.is_some() {
                indexed_after = true;
            }
            depth += 1;
            continue;
        }
        if t.is_punct(']') {
            depth -= 1;
            continue;
        }
        if depth == 0 && t.is_punct('{') {
            break;
        }
        if depth == 0 && t.kind == TokKind::Ident && t.text != "mut" {
            last_ident = Some(t);
            indexed_after = false;
        }
    }
    if indexed_after {
        return None;
    }
    let t = last_ident?;
    if map_names.contains(&t.text) {
        Some((t.line, t.text.clone()))
    } else {
        None
    }
}

/// Line spans of `#[cfg(test)] mod … { … }` items.
fn cfg_test_spans(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
            // Find the matching `]` and check for cfg + test inside.
            let mut depth = 1;
            let mut j = i + 2;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < code.len() && depth > 0 {
                let t = code[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Skip further attributes, then expect `mod name {`.
                let mut k = j;
                while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
                    let mut d = 1;
                    k += 2;
                    while k < code.len() && d > 0 {
                        if code[k].is_punct('[') {
                            d += 1;
                        } else if code[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // Skip a visibility modifier: `pub` or `pub(crate)` /
                // `pub(in …)` before `mod`.
                if k < code.len() && code[k].is_ident("pub") {
                    k += 1;
                    if k < code.len() && code[k].is_punct('(') {
                        let mut d = 1;
                        k += 1;
                        while k < code.len() && d > 0 {
                            if code[k].is_punct('(') {
                                d += 1;
                            } else if code[k].is_punct(')') {
                                d -= 1;
                            }
                            k += 1;
                        }
                    }
                }
                if k + 2 < code.len()
                    && code[k].is_ident("mod")
                    && code[k + 1].kind == TokKind::Ident
                    && code[k + 2].is_punct('{')
                {
                    if let Some(close) = match_brace(code, k + 2) {
                        spans.push((code[k + 2].line, code[close].line));
                        i = close + 1;
                        continue;
                    }
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(code: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Token ranges of function bodies (`fn name(…) … { … }`).
fn fn_bodies(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("fn") {
            // Find the parameter list, then the first `{` after it.
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct('(') {
                j += 1;
            }
            let mut depth = 0isize;
            while j < code.len() {
                if code[j].is_punct('(') {
                    depth += 1;
                } else if code[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let mut k = j;
            while k < code.len() && !code[k].is_punct('{') && !code[k].is_punct(';') {
                k += 1;
            }
            if k < code.len() && code[k].is_punct('{') {
                if let Some(close) = match_brace(code, k) {
                    out.push((k + 1, close));
                    i = k + 1; // nested fns get their own entry
                    continue;
                }
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    out
}
