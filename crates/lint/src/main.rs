//! `np-lint` — the workspace determinism & concurrency lint CLI.
//!
//! ```text
//! np-lint [--check] [--root DIR]   lint the workspace; --check exits 1
//!                                  on any unsuppressed finding (CI gate)
//! np-lint tags [--root DIR]        dump the RNG stream-tag registry (D3)
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from
//! the current directory to the first `Cargo.toml` with a
//! `[workspace]` section. `np-bench lint` drives the same
//! [`np_lint::run_cli`] entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(np_lint::run_cli(&args));
}
