//! A hand-rolled Rust token scanner — the lexing layer of `np-lint`.
//!
//! The lint rules (see [`crate::rules`]) pattern-match over token
//! streams, so the scanner's one job is to be *reliably wrong-proof*
//! about the three things that break naive `grep`-style linting:
//!
//! * **strings** — `"…"`, raw strings `r#"…"#`, byte strings `b"…"`:
//!   a `HashMap` or `unsafe` inside a string literal is not code;
//! * **comments** — `//`, `///`, `//!` and (nested) `/* … */`: prose
//!   mentioning `Instant::now` must not fire a finding, but comments
//!   are *kept* as tokens because two rules read them (`// SAFETY:`
//!   for D4, `// np-lint: allow(..)` suppressions);
//! * **char literals vs lifetimes** — `'a'` is a char, `'a` is a
//!   lifetime; the scanner disambiguates so a `'m'` literal cannot eat
//!   the rest of the file.
//!
//! Everything else is deliberately coarse: identifiers (keywords
//! included), numeric literals (raw text retained — the D3 tag
//! registry parses values out of them), and single-character
//! punctuation (`::` is two `:` tokens; rules match the pair).
//! The scanner never fails: unexpected bytes lex as punctuation.

/// What a token is. `text` is retained for identifiers, numbers and
/// comments — the only kinds the rules inspect by content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, …).
    Ident,
    /// Integer or float literal, raw text kept (`0x4D46_494C`).
    Number,
    /// String / raw string / byte-string literal (content dropped).
    Str,
    /// Char or byte-char literal (content dropped).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Line or block comment, full text kept (D4 / allow parsing).
    Comment,
    /// Single punctuation character, in `text`.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lex `src` into tokens. Never fails; see the module docs for the
/// (deliberate) coarseness.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Comment,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (nested, as in Rust).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Token {
                kind: TokKind::Comment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, br#"…"#, r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            // Determine a possible raw-string prefix run: r, br, rb? (rb
            // is not Rust; accept r and br), followed by zero or more
            // '#' then '"'.
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 2;
            } else if b[j] == 'r' {
                j += 1;
            } else {
                j = usize::MAX;
            }
            if j != usize::MAX {
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    // Raw string: scan to `"` followed by `hashes` #'s.
                    let start_line = line;
                    k += 1;
                    'scan: while k < n {
                        if b[k] == '\n' {
                            line += 1;
                        }
                        if b[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && b[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'scan;
                            }
                        }
                        k += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
                if c == 'r' && hashes == 1 && k < n && (b[k].is_alphabetic() || b[k] == '_') {
                    // Raw identifier r#type: lex as the identifier.
                    let start = k;
                    let mut e = k;
                    while e < n && (b[e].is_alphanumeric() || b[e] == '_') {
                        e += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Ident,
                        text: b[start..e].iter().collect(),
                        line,
                    });
                    i = e;
                    continue;
                }
            }
        }
        // Plain / byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                match b[i] {
                    // An escape may be a `\` line-continuation: the
                    // skipped char can be a newline and must still
                    // count, or every line after the literal drifts.
                    '\\' => {
                        if i + 1 < n && b[i + 1] == '\n' {
                            line += 1;
                        }
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime. `'` then:
        //  * `\` → escaped char literal;
        //  * X followed by `'` → char literal;
        //  * ident-start not followed by closing quote → lifetime.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char: consume to closing quote.
                let mut k = i + 2;
                while k < n && b[k] != '\'' {
                    k += 1;
                }
                toks.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = (k + 1).min(n);
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                toks.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i += 3;
                continue;
            }
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let start = i + 1;
                let mut e = start;
                while e < n && (b[e].is_alphanumeric() || b[e] == '_') {
                    e += 1;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: b[start..e].iter().collect(),
                    line,
                });
                i = e;
                continue;
            }
            // Bare quote (malformed) — punctuation.
            toks.push(Token {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            });
            i += 1;
            continue;
        }
        // Identifier / keyword (b"…" handled above; a lone `b` lands here).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number: digits, then alnum/underscore (hex, suffixes), one
        // fractional part if the dot is followed by a digit (so `0..n`
        // stays two tokens and a range).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            toks.push(Token {
                kind: TokKind::Number,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: one punctuation char.
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        let toks = kinds(r#"let s = "HashMap inside a string";"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "HashMap"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = kinds(r##"let s = r#"quote " inside"#; let x = HashMap::new();"##);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "HashMap"));
    }

    #[test]
    fn comments_are_kept_with_text() {
        let toks = lex("// SAFETY: fine\nunsafe { }");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[0].text.contains("SAFETY:"));
        assert_eq!(toks[0].line, 1);
        assert!(toks[1].is_ident("unsafe"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let toks = lex("/* a /* b */ c\nstill comment */\nfoo");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[1].is_ident("foo"));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn numbers_keep_raw_text_and_ranges_split() {
        let toks = kinds("const T: u64 = 0x4D46_494C; for i in 0..n {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Number && t == "0x4D46_494C"));
        // `0..n` is Number('0') '.' '.' Ident(n).
        let zero = toks.iter().position(|(k, t)| *k == TokKind::Number && t == "0").unwrap();
        assert_eq!(toks[zero + 1].1, ".");
        assert_eq!(toks[zero + 2].1, ".");
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let toks = lex("let s = \"a \\\n   b \\\n   c\";\nfoo");
        let foo = toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 4, "continuation newlines must be counted");
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let toks = lex("Instant::now()");
        assert!(toks[0].is_ident("Instant"));
        assert!(toks[1].is_punct(':'));
        assert!(toks[2].is_punct(':'));
        assert!(toks[3].is_ident("now"));
    }
}
