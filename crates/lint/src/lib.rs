//! # np-lint
//!
//! A dependency-free, workspace-wide static-analysis pass that turns
//! the repo's written determinism contract — *same seed ⇒ bit-identical
//! `PaperMetrics` at any thread count, on any backend* — from prose and
//! sampled runtime tests into a machine-checked gate.
//!
//! The runtime suites (`tests/parallel_determinism.rs`,
//! `tests/algo_conformance.rs`) can only catch a nondeterminism the
//! sampled workloads happen to exercise; PR 7's Tapestry bug (HashMap
//! iteration order leaking into routing tables) sat unnoticed until a
//! conformance sweep tripped over it. `np-lint` pins the whole bug
//! *class* instead: every workspace `.rs` file is lexed (strings,
//! comments and char literals handled properly — see
//! [`lexer`]) and checked against the five rules in [`rules`].
//!
//! Findings are suppressed **at the site** with
//!
//! ```text
//! // np-lint: allow(D1) — sorted by (count, peer) below; order cannot reach results
//! ```
//!
//! on the line directly above (a trailing same-line comment also
//! works). The justification is mandatory — an allow without one is
//! itself a finding (rule `A0`).
//!
//! Entry points: [`lint_workspace`] (walk + aggregate),
//! [`lint_files`] (pre-read sources — the fixture self-tests use
//! this), and the `np-lint` binary (`--check` exits nonzero on any
//! unsuppressed finding; `tags` dumps the D3 stream-tag registry).

pub mod lexer;
pub mod rules;

pub use rules::{Allow, Finding, Rule, TagDef};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Modules allowed to read ambient clocks (rule D2): the parallel
/// engine's busy-time accounting, the serve daemon's pacing/latency
/// telemetry, and the vendored bench harness's timing core. Matched as
/// a prefix of the workspace-relative path. Everything else annotates
/// per site.
pub const D2_ALLOWLIST: &[&str] = &[
    "crates/util/src/parallel.rs",
    "crates/serve/src/",
    "crates/compat/criterion/",
];

/// Directory names never walked: build output, VCS, and checked-in
/// lint fixtures (which contain deliberate violations).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Aggregate result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned allow comment.
    pub suppressed: usize,
    /// The workspace RNG stream-tag registry (non-test defs), sorted
    /// by value.
    pub tags: Vec<TagDef>,
    /// Files analysed.
    pub files: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render findings + summary as the CLI prints them.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!(
                "{}:{}: {}: {}\n    fix: {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.msg,
                f.hint
            ));
        }
        s.push_str(&format!(
            "np-lint: {} finding(s), {} suppressed, {} file(s), {} stream tag(s)\n",
            self.findings.len(),
            self.suppressed,
            self.files,
            self.tags.len()
        ));
        s
    }

    /// Render the `np-lint tags` registry dump.
    pub fn render_tags(&self) -> String {
        let mut s = String::from("RNG stream-tag registry (D3: values must be workspace-unique):\n");
        for t in &self.tags {
            s.push_str(&format!(
                "  {:<18} = {:>14}  {}:{}\n",
                t.name, t.value_text, t.file, t.line
            ));
        }
        s.push_str(&format!("  {} tag(s)\n", self.tags.len()));
        s
    }
}

/// Is this path test-side code (whole-file exemption for the
/// result-path rules)? Integration tests, benches and examples never
/// feed `PaperMetrics`.
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Lint a set of `(workspace-relative path, source)` pairs and
/// aggregate: apply allow suppressions, then judge D3 tag collisions
/// across the whole set.
pub fn lint_files(files: &[(String, String)]) -> LintReport {
    let mut report = LintReport {
        files: files.len(),
        ..Default::default()
    };
    let mut all_tags: Vec<TagDef> = Vec::new();
    let mut raw: Vec<(Finding, bool)> = Vec::new(); // (finding, suppressed)
    // D3 allows recorded per site as (file, comment line, comment end).
    let mut tag_allows: Vec<(String, usize, usize)> = Vec::new();

    for (rel, src) in files {
        let toks = lexer::lex(src);
        let allowlisted = D2_ALLOWLIST.iter().any(|p| rel.starts_with(p));
        let fl = rules::lint_tokens(rel, &toks, is_test_path(rel), allowlisted);
        let allows = fl.allows;
        for f in fl.findings {
            let suppressed = f.rule != Rule::A0 && is_allowed(&allows, f.rule, f.line);
            raw.push((f, suppressed));
        }
        // D3 collisions are judged across the whole set below; only
        // non-test tag defs participate.
        all_tags.extend(fl.tags.iter().filter(|t| !t.is_test).cloned());
        tag_allows.extend(
            allows
                .iter()
                .filter(|a| a.rule == Some(Rule::D3))
                .map(|a| (rel.clone(), a.line, a.end_line)),
        );
    }

    // Workspace-level D3: group by value.
    all_tags.sort_by(|a, b| (a.value, &a.file, a.line).cmp(&(b.value, &b.file, b.line)));
    let mut by_value: BTreeMap<u64, Vec<&TagDef>> = BTreeMap::new();
    for t in &all_tags {
        if let Some(v) = t.value {
            by_value.entry(v).or_default().push(t);
        }
    }
    for (value, defs) in &by_value {
        if defs.len() > 1 {
            let sites: Vec<String> = defs
                .iter()
                .map(|d| format!("{} ({}:{})", d.name, d.file, d.line))
                .collect();
            for d in defs {
                let f = Finding {
                    rule: Rule::D3,
                    file: d.file.clone(),
                    line: d.line,
                    msg: format!(
                        "stream tag value {:#x} is shared by {}",
                        value,
                        sites.join(", ")
                    ),
                    hint: "pick a fresh u64 (ASCII mnemonic convention) so the sub_seed streams \
                           decorrelate; run `np-lint tags` for the registry"
                        .to_string(),
                };
                let suppressed = tag_allows
                    .iter()
                    .any(|(file, l, el)| {
                        file == &d.file && (d.line == el + 1 || (d.line >= *l && d.line <= *el))
                    });
                raw.push((f, suppressed));
            }
        }
    }
    report.tags = all_tags;

    for (f, suppressed) in raw {
        if suppressed {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Is a finding of `rule` at `line` covered by one of `allows`?
/// An allow covers the line directly below its comment and the
/// comment's own line (trailing form).
fn is_allowed(allows: &[Allow], rule: Rule, line: usize) -> bool {
    allows.iter().any(|a| {
        a.rule == Some(rule)
            && a.reason_len >= rules::MIN_ALLOW_REASON
            && (line == a.end_line + 1 || (line >= a.line && line <= a.end_line))
    })
}

/// Walk `root` (skipping `target/`, `.git/`, `fixtures/`), lint every
/// `.rs` file, aggregate. Files are visited in sorted path order so
/// reports are deterministic.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let sources: Vec<(String, String)> = files
        .into_iter()
        .map(|(rel, path)| std::fs::read_to_string(&path).map(|src| (rel, src)))
        .collect::<Result<_, _>>()?;
    Ok(lint_files(&sources))
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// The shared CLI driver behind both `np-lint` and `np-bench lint`.
///
/// ```text
/// [tags] [--check] [--root DIR]
/// ```
///
/// Prints the report (or the tag registry) and returns the process
/// exit code: 0 clean/suppressed-only, 1 unsuppressed findings under
/// `--check` (or a walk error), 2 usage error.
pub fn run_cli(args: &[String]) -> i32 {
    const USAGE: &str = "usage: [tags] [--check] [--root DIR]";
    let mut check = false;
    let mut tags = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "tags" => tags = true,
            "--check" => check = true,
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("error: --root requires a directory\n{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!(
            "error: no workspace root found (no Cargo.toml with [workspace] above the \
             current directory); pass --root DIR"
        );
        return 2;
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return 1;
        }
    };
    if tags {
        print!("{}", report.render_tags());
        return 0;
    }
    print!("{}", report.render());
    if check && !report.is_clean() {
        eprintln!(
            "np-lint --check: {} unsuppressed finding(s) — fix them or add \
             `// np-lint: allow(Dn) — reason` at the site",
            report.findings.len()
        );
        return 1;
    }
    0
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
