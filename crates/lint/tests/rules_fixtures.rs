//! Self-tests for the np-lint rule set, driven by checked-in fixtures.
//!
//! Each fixture in `tests/fixtures/` carries deliberate violations
//! (positives) and near-misses (negatives); this suite lints them via
//! [`np_lint::lint_files`] under synthetic workspace-relative paths
//! and asserts the exact (rule, line) sets. The fixtures directory is
//! excluded from `lint_workspace`'s walk, so the deliberate violations
//! never pollute the real gate — the final test here IS that gate:
//! the enclosing workspace must lint clean.

use np_lint::{lint_files, lint_workspace, Rule};
use std::path::Path;

/// Lint one fixture under a synthetic result-path location (no
/// `tests/` component — that would grant the whole-file exemption).
fn lint_one(name: &str, src: &str) -> np_lint::LintReport {
    lint_files(&[(format!("crates/fixture/src/{name}"), src.to_string())])
}

/// The `(rule, line)` pairs of a report's findings, in report order.
fn sites(report: &np_lint::LintReport) -> Vec<(Rule, usize)> {
    report.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_fires_on_every_map_iteration_form() {
    let r = lint_one("d1_positive.rs", include_str!("fixtures/d1_positive.rs"));
    assert_eq!(
        sites(&r),
        vec![
            (Rule::D1, 11), // .values() on a map-typed local
            (Rule::D1, 16), // for … in over a map-typed binding
            (Rule::D1, 24), // .retain()
            (Rule::D1, 25), // .drain()
            (Rule::D1, 30), // .keys() on a map-typed field
        ],
        "unexpected finding set:\n{}",
        r.render()
    );
    assert_eq!(r.suppressed, 0);
}

#[test]
fn d1_sees_through_every_near_miss() {
    let r = lint_one("d1_negative.rs", include_str!("fixtures/d1_negative.rs"));
    assert!(
        r.is_clean(),
        "negative fixture must not fire:\n{}",
        r.render()
    );
}

#[test]
fn d2_fires_on_clock_reads_but_not_mentions() {
    let r = lint_one("d2.rs", include_str!("fixtures/d2.rs"));
    assert_eq!(
        sites(&r),
        vec![(Rule::D2, 8), (Rule::D2, 13)],
        "unexpected finding set:\n{}",
        r.render()
    );
}

#[test]
fn d2_allowlisted_paths_are_exempt() {
    // Same source, presented under a timing-allowlisted module path.
    let r = lint_files(&[(
        "crates/serve/src/d2.rs".to_string(),
        include_str!("fixtures/d2.rs").to_string(),
    )]);
    assert!(
        r.is_clean(),
        "allowlisted path must exempt D2:\n{}",
        r.render()
    );
}

#[test]
fn d3_collisions_are_cross_file_and_test_tags_are_exempt() {
    let a = ("crates/a/src/lib.rs".to_string(), include_str!("fixtures/collide/crate_a.rs").to_string());
    let b = ("crates/b/src/lib.rs".to_string(), include_str!("fixtures/collide/crate_b.rs").to_string());

    // Each crate alone is collision-free …
    assert!(lint_files(std::slice::from_ref(&a)).is_clean());
    assert!(lint_files(std::slice::from_ref(&b)).is_clean());

    // … but linted as one set, FILL_TAG / REFILL_TAG share a value and
    // fire at both definition sites. The #[cfg(test)] SCRATCH_TAGs
    // share a value too, and must not.
    let r = lint_files(&[a, b]);
    assert_eq!(
        sites(&r),
        vec![(Rule::D3, 5), (Rule::D3, 2)],
        "expected exactly the FILL/REFILL collision pair:\n{}",
        r.render()
    );
    // Registry: the four non-test tags, sorted by value; test tags out.
    let names: Vec<&str> = r.tags.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names.len(), 4);
    assert!(names.contains(&"FILL_TAG") && names.contains(&"REFILL_TAG"));
    assert!(names.contains(&"PROBE_TAG") && names.contains(&"WALK_TAG"));
    assert!(!names.contains(&"SCRATCH_TAG"));
}

#[test]
fn d3_registry_parses_every_literal_form_and_skips_non_tags() {
    let r = lint_one("d3_distinct.rs", include_str!("fixtures/d3_distinct.rs"));
    assert!(r.is_clean(), "{}", r.render());
    let reg: Vec<(&str, Option<u64>)> =
        r.tags.iter().map(|t| (t.name.as_str(), t.value)).collect();
    // Sorted by value: 7 < 1_000_003 < 0x414C_5048.
    assert_eq!(
        reg,
        vec![
            ("GAMMA_TAG", Some(7)),
            ("BETA_TAG", Some(1_000_003)),
            ("ALPHA_TAG", Some(0x414C_5048)),
        ]
    );
    // NOT_A_TAG (u32) shares ALPHA_TAG's value — had it entered the
    // registry, the clean assertion above would have caught it as a
    // collision. TAGGED (no `_TAG` suffix) stays out too.
}

#[test]
fn d4_requires_safety_comments_even_in_tests() {
    let r = lint_one("d4.rs", include_str!("fixtures/d4.rs"));
    assert_eq!(
        sites(&r),
        vec![
            (Rule::D4, 5),  // unsafe fn, blank line above
            (Rule::D4, 11), // undocumented block
            (Rule::D4, 35), // tests get no D4 exemption
        ],
        "unexpected finding set:\n{}",
        r.render()
    );
}

#[test]
fn d5_fires_only_on_the_inverted_acquisition() {
    let r = lint_one("d5.rs", include_str!("fixtures/d5.rs"));
    assert_eq!(
        sites(&r),
        vec![(Rule::D5, 14)],
        "unexpected finding set:\n{}",
        r.render()
    );
}

#[test]
fn allows_suppress_with_a_reason_and_fire_a0_without_one() {
    let r = lint_one("allow.rs", include_str!("fixtures/allow.rs"));
    // Two properly reasoned allows (above-line and trailing forms).
    assert_eq!(r.suppressed, 2, "{}", r.render());
    assert_eq!(
        sites(&r),
        vec![
            (Rule::A0, 19), // allow with no justification …
            (Rule::D1, 20), // … does not suppress its target
            (Rule::A0, 24), // allow naming an unknown rule id …
            (Rule::D1, 25), // … does not suppress either
        ],
        "unexpected finding set:\n{}",
        r.render()
    );
}

#[test]
fn test_paths_get_the_whole_file_exemption_except_d4() {
    // The all-positive D1 fixture under a tests/ path: nothing fires.
    let r = lint_files(&[(
        "crates/fixture/tests/d1_positive.rs".to_string(),
        include_str!("fixtures/d1_positive.rs").to_string(),
    )]);
    assert!(r.is_clean(), "{}", r.render());
    // But D4 has no test exemption — the undocumented unsafes still fire.
    let r = lint_files(&[(
        "crates/fixture/tests/d4.rs".to_string(),
        include_str!("fixtures/d4.rs").to_string(),
    )]);
    assert_eq!(sites(&r).iter().filter(|(rule, _)| *rule == Rule::D4).count(), 3);
}

/// The gate the CI step enforces, as a plain test: the enclosing
/// workspace lints clean, and the real stream-tag registry is intact.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists());
    let r = lint_workspace(&root).expect("workspace walk");
    assert!(
        r.is_clean(),
        "workspace must lint clean (fix or allow-annotate):\n{}",
        r.render()
    );
    assert!(r.files > 100, "walk found only {} files", r.files);
    assert!(
        r.tags.len() >= 13,
        "stream-tag registry shrank: {} tags\n{}",
        r.tags.len(),
        r.render_tags()
    );
    // Every registered tag parsed to a concrete value.
    assert!(r.tags.iter().all(|t| t.value.is_some()));
}
