// np-lint fixture: both clock reads must fire D2 under a normal path
// and be exempt when the same source is presented under an
// allowlisted path (the self-test passes this file twice). Paths stay
// fully qualified: D2 matches the `SystemTime` ident anywhere, so an
// import line would itself (correctly) fire and muddy the line count.

fn wall_clock() -> u128 {
    let t0 = std::time::Instant::now(); // fires: ambient clock
    t0.elapsed().as_nanos()
}

fn epoch() -> std::time::Duration {
    let now = std::time::SystemTime::now(); // fires: SystemTime in any position
    now.duration_since(std::time::UNIX_EPOCH).unwrap_or_default()
}

fn not_a_clock(a: std::time::Duration, b: std::time::Duration) -> std::time::Duration {
    a + b // Duration arithmetic is pure — must not fire
}

fn mention_in_string() -> &'static str {
    "Instant::now() in a string must not fire"
}

// A comment mentioning Instant::now() or SystemTime must not fire either.
