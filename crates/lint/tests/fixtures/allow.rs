// np-lint fixture: the allow grammar. One properly suppressed D1, one
// trailing-form suppression, one allow with no justification (fires
// A0), one allow naming an unknown rule (fires A0).
use std::collections::HashMap;

fn suppressed(scores: HashMap<u32, u64>) -> u64 {
    let mut v: Vec<u64> =
        // np-lint: allow(D1) — collected then summed; addition is commutative (fixture)
        scores.values().copied().collect();
    v.sort_unstable();
    v.iter().sum()
}

fn suppressed_trailing(scores: HashMap<u32, u64>) -> usize {
    scores.keys().count() // np-lint: allow(D1) — commutative count (fixture)
}

fn unjustified(scores: HashMap<u32, u64>) -> u64 {
    // np-lint: allow(D1)
    scores.values().sum()
}

fn unknown_rule(scores: HashMap<u32, u64>) -> u64 {
    // np-lint: allow(D9) — there is no rule D9
    scores.values().sum()
}
