// np-lint fixture: a healthy tag registry — all values distinct, all
// parse forms covered (hex with separators, decimal, suffixed).
pub const ALPHA_TAG: u64 = 0x414C_5048;
pub const BETA_TAG: u64 = 1_000_003;
pub const GAMMA_TAG: u64 = 7u64;

// Not tags: wrong type, wrong name shape — must not enter the registry.
pub const NOT_A_TAG: u32 = 0x414C_5048;
pub const TAGGED: u64 = 0x414C_5048;
