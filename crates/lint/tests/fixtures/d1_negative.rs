// np-lint fixture: nothing in this file may fire. Every construct is
// a near-miss of D1 that the heuristics must see through.
use std::collections::{BTreeMap, HashMap};

struct Pack {
    rows: Vec<u32>,
}

fn vec_iteration(rows: Vec<u32>) -> u32 {
    rows.iter().sum() // Vec iteration is index-ordered
}

fn btree_is_ordered(sorted: BTreeMap<u32, u32>) -> u32 {
    sorted.values().sum() // BTreeMap iterates in key order
}

fn lookup_not_iteration(map: HashMap<u32, Vec<u32>>, k: u32) -> u32 {
    let mut total = 0;
    // Indexing yields a *value* of the map; iterating the Vec value is
    // order-safe even though the receiver chain starts at the map.
    for &x in &map[&k] {
        total += x;
    }
    total + map[&k].iter().sum::<u32>()
}

fn lookup_only(lut: HashMap<u32, u32>) -> u32 {
    // `get` is not an iteration method.
    *lut.get(&3).unwrap_or(&0)
}

impl Pack {
    fn field_vec(&self) -> usize {
        self.rows.iter().count() // Vec field, same name discipline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_test_module(scores: HashMap<u32, u64>) -> u64 {
        scores.values().sum() // exempt: result paths never run here
    }
}
