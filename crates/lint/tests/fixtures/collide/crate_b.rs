// np-lint fixture, "crate B" of the cross-crate D3 collision pair.
pub const REFILL_TAG: u64 = 0x4649_4C4C; // same value as crate A's FILL_TAG — fires
pub const WALK_TAG: u64 = 0x57_414C4B; // "WALK" — unique, must not fire

#[cfg(test)]
mod tests {
    // Collides with crate A's test tag — but test tags are exempt.
    const SCRATCH_TAG: u64 = 0xDEAD_BEEF;
}
