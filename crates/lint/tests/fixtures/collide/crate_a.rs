// np-lint fixture, "crate A" of the cross-crate D3 collision pair:
// its tag value deliberately equals crate_b.rs's. The collision is
// only visible when both files are linted as one set — per-file
// passes see nothing wrong.
pub const FILL_TAG: u64 = 0x4649_4C4C; // "FILL"
pub const PROBE_TAG: u64 = 0x5052_4F42; // "PROB" — unique, must not fire

#[cfg(test)]
mod tests {
    // Test-side tags never join the workspace registry.
    const SCRATCH_TAG: u64 = 0xDEAD_BEEF;
}
