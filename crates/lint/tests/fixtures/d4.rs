// np-lint fixture: the undocumented unsafe blocks must fire D4; the
// documented forms (comment block above, trailing same-line, doc
// block with interleaved plain comments) must not.

unsafe fn raw(p: *mut u8) -> u8 {
    // fires: unsafe fn without a SAFETY comment
    *p
}

fn undocumented(p: *mut u8) -> u8 {
    unsafe { *p } // fires: no SAFETY comment anywhere near
}

fn documented_above(p: *mut u8) -> u8 {
    // SAFETY: caller contract (fixture) — p is valid for reads.
    unsafe { *p }
}

fn documented_multiline(p: *mut u8) -> u8 {
    // The comment block directly above may mix prose lines,
    // SAFETY: as long as one of them carries the marker.
    // (trailing prose is fine too)
    unsafe { *p }
}

fn documented_trailing(p: *mut u8) -> u8 {
    unsafe { *p } // SAFETY: trailing form (fixture).
}

// D4 applies in test code too — a wrong SAFETY story in a test is
// still undefined behaviour.
#[cfg(test)]
mod tests {
    fn in_tests(p: *mut u8) -> u8 {
        unsafe { *p } // fires: tests get no D4 exemption
    }
}
