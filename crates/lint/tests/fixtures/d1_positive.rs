// np-lint fixture: every construct in this file must fire D1.
// (The fixtures/ directory is excluded from the workspace walk; these
// sources are linted only by the self-tests, via `lint_files`.)
use std::collections::{HashMap, HashSet};

struct Table {
    index: HashMap<u32, Vec<u32>>,
}

fn method_iteration(scores: HashMap<u32, u64>) -> u64 {
    scores.values().sum() // fires: .values() on a map-typed local
}

fn for_loop_iteration(seen: HashSet<u32>) -> u32 {
    let mut best = 0;
    for x in &seen {
        // fires: for … in over a map-typed binding
        best = best.max(*x);
    }
    best
}

fn drain_and_retain(mut pending: HashMap<u32, u32>) {
    pending.retain(|_, v| *v > 0); // fires: retain visits in map order
    for (_k, _v) in pending.drain() {} // fires: drain consumes in map order
}

impl Table {
    fn field_iteration(&self) -> usize {
        self.index.keys().count() // fires: .keys() on a map-typed field
    }
}
