// np-lint fixture: D5 lock-order. The documented order is the
// accounting mutex (`resident`) before any slot lock (`slots[…]`);
// the inverted function must fire, the conforming ones must not.
use std::sync::{Arc, Mutex, RwLock};

struct Cache {
    slots: Vec<RwLock<Option<Arc<Vec<f32>>>>>,
    resident: Mutex<(usize, usize)>,
}

impl Cache {
    fn inverted(&self, s: usize) {
        let _slot = self.slots[s].write().unwrap(); // slot first …
        let _acc = self.resident.lock().unwrap(); // fires: … mutex second
    }

    fn conforming(&self, s: usize) {
        let _acc = self.resident.lock().unwrap();
        let _slot = self.slots[s].write().unwrap();
    }

    fn reader_only(&self, s: usize) -> bool {
        // A slot read with no accounting touch is the hot get() path —
        // must not fire (the order constrains pairs, not singletons).
        self.slots[s].read().unwrap().is_some()
    }

    fn accounting_only(&self) -> usize {
        self.resident.lock().unwrap().0
    }
}
