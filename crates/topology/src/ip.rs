//! IPv4 addresses and prefix allocation.
//!
//! The IP-prefix remedy (paper §5, Figure 11) keys peers by fixed-length
//! prefixes of their IP addresses, so the worlds must assign addresses the
//! way ISPs do: each AS owns large blocks, PoPs carve /16s out of them,
//! end-networks get /24s, home pools get /22s per aggregation router —
//! with a configurable fraction of *provider-independent* allocations
//! (multihomed organisations whose addresses come from a swamp block and
//! therefore break prefix locality; these drive Figure 11's
//! false-negative floor).

/// An IPv4 address as a `u32` in host order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The `len`-bit prefix value (shifted to the low bits).
    #[inline]
    pub fn prefix_bits(self, len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            self.0 >> (32 - len)
        }
    }

    /// Do two addresses share a `len`-bit prefix?
    #[inline]
    pub fn shares_prefix(self, other: Ipv4, len: u8) -> bool {
        self.prefix_bits(len) == other.prefix_bits(len)
    }
}

impl std::fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A CIDR prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prefix {
    /// Network address (low bits zero).
    pub net: u32,
    /// Prefix length in bits.
    pub len: u8,
}

impl Prefix {
    /// Construct, masking stray host bits.
    pub fn new(net: u32, len: u8) -> Prefix {
        assert!(len <= 32);
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Prefix {
            net: net & mask,
            len,
        }
    }

    /// Does the prefix contain `ip`?
    pub fn contains(&self, ip: Ipv4) -> bool {
        ip.shares_prefix(Ipv4(self.net), self.len)
    }

    /// Number of addresses in the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address inside the prefix (panics when out of range).
    pub fn addr(&self, i: u64) -> Ipv4 {
        assert!(i < self.size(), "host index {i} outside /{}", self.len);
        Ipv4(self.net + i as u32)
    }

    /// Split into consecutive sub-prefixes of length `sub_len`, returning
    /// the `i`-th.
    pub fn subnet(&self, sub_len: u8, i: u64) -> Prefix {
        assert!(sub_len >= self.len && sub_len <= 32);
        let count = 1u64 << (sub_len - self.len);
        assert!(i < count, "subnet index {i} outside 2^{}", sub_len - self.len);
        Prefix::new(self.net + (i << (32 - sub_len)) as u32, sub_len)
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", Ipv4(self.net), self.len)
    }
}

/// Sequential allocator of top-level blocks.
///
/// Provider space grows upward from `16.0.0.0`; the provider-independent
/// "swamp" grows upward from `192.0.0.0`. Both are plain sequences — the
/// absolute values are arbitrary, only the *sharing structure* matters to
/// the experiments.
#[derive(Debug, Clone)]
pub struct IpAllocator {
    next_provider: u32,
    next_pi: u32,
}

impl Default for IpAllocator {
    fn default() -> Self {
        IpAllocator {
            next_provider: 16 << 24,
            next_pi: 192 << 24,
        }
    }
}

impl IpAllocator {
    pub fn new() -> IpAllocator {
        IpAllocator::default()
    }

    /// Allocate the next provider block of the given prefix length
    /// (e.g. a /12 per AS).
    pub fn provider_block(&mut self, len: u8) -> Prefix {
        assert!((4..=24).contains(&len));
        let p = Prefix::new(self.next_provider, len);
        self.next_provider = self
            .next_provider
            .checked_add(1 << (32 - len))
            .expect("provider space exhausted");
        assert!(
            self.next_provider <= 192 << 24,
            "provider space ran into PI swamp"
        );
        p
    }

    /// Allocate the next provider-independent /24 from the swamp.
    pub fn pi_slash24(&mut self) -> Prefix {
        let p = Prefix::new(self.next_pi, 24);
        self.next_pi = self.next_pi.checked_add(1 << 8).expect("PI space exhausted");
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dotted_quad() {
        assert_eq!(Ipv4(0x0A00_0001).to_string(), "10.0.0.1");
        assert_eq!(Prefix::new(0xC0A8_0100, 24).to_string(), "192.168.1.0/24");
    }

    #[test]
    fn prefix_bits_and_sharing() {
        let a = Ipv4(0xC0A8_0101); // 192.168.1.1
        let b = Ipv4(0xC0A8_01FE); // 192.168.1.254
        let c = Ipv4(0xC0A8_0201); // 192.168.2.1
        assert!(a.shares_prefix(b, 24));
        assert!(!a.shares_prefix(c, 24));
        assert!(a.shares_prefix(c, 16));
        assert!(a.shares_prefix(c, 0), "the zero-length prefix matches all");
    }

    #[test]
    fn prefix_contains_and_size() {
        let p = Prefix::new(0x0A00_0000, 24);
        assert!(p.contains(Ipv4(0x0A00_00FF)));
        assert!(!p.contains(Ipv4(0x0A00_0100)));
        assert_eq!(p.size(), 256);
        assert_eq!(p.addr(5), Ipv4(0x0A00_0005));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn addr_out_of_range_panics() {
        Prefix::new(0x0A00_0000, 24).addr(256);
    }

    #[test]
    fn subnet_partition() {
        let p = Prefix::new(0x0A00_0000, 16);
        let s0 = p.subnet(24, 0);
        let s1 = p.subnet(24, 1);
        let s255 = p.subnet(24, 255);
        assert_eq!(s0.to_string(), "10.0.0.0/24");
        assert_eq!(s1.to_string(), "10.0.1.0/24");
        assert_eq!(s255.to_string(), "10.0.255.0/24");
        assert!(!s0.contains(s1.addr(0)));
    }

    #[test]
    fn allocator_blocks_are_disjoint() {
        let mut alloc = IpAllocator::new();
        let a = alloc.provider_block(12);
        let b = alloc.provider_block(12);
        let pi = alloc.pi_slash24();
        assert!(!a.contains(Ipv4(b.net)));
        assert!(!b.contains(Ipv4(a.net)));
        assert!(!a.contains(Ipv4(pi.net)) && !b.contains(Ipv4(pi.net)));
        // PI space really is far away in prefix terms.
        assert!(!Ipv4(a.net).shares_prefix(Ipv4(pi.net), 8));
    }

    proptest::proptest! {
        /// shares_prefix is symmetric and monotone in prefix length.
        #[test]
        fn prop_prefix_monotone(a in proptest::num::u32::ANY, b in proptest::num::u32::ANY, len in 1u8..=32) {
            let (ia, ib) = (Ipv4(a), Ipv4(b));
            proptest::prop_assert_eq!(ia.shares_prefix(ib, len), ib.shares_prefix(ia, len));
            if ia.shares_prefix(ib, len) {
                proptest::prop_assert!(ia.shares_prefix(ib, len - 1) || len == 1);
            }
        }
    }
}
