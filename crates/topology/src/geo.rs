//! Geography: points, regions, and propagation latency.
//!
//! Hubs and PoPs are placed on a 2-D plane measured in kilometres, grouped
//! into a handful of "continents" (dense disks far apart) so the resulting
//! latency distribution has the multi-modal structure real inter-PoP
//! datasets show (intra-continent tens of ms, inter-continent 100+ ms).
//! Latency is distance over the speed of light in fibre (~200 km/ms one
//! way) times a route-inflation ("detour") factor.

use np_util::dist;
use np_util::Micros;
use rand::Rng;

/// Kilometres per millisecond of one-way propagation in fibre.
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// A point on the plane (km).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    pub x_km: f64,
    pub y_km: f64,
}

impl GeoPoint {
    /// Euclidean distance in km.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        ((self.x_km - other.x_km).powi(2) + (self.y_km - other.y_km).powi(2)).sqrt()
    }

    /// Base round-trip propagation latency to `other` (no detour).
    pub fn base_rtt(&self, other: &GeoPoint) -> Micros {
        let one_way_ms = self.distance_km(other) / FIBRE_KM_PER_MS;
        Micros::from_ms(2.0 * one_way_ms)
    }
}

/// A continent: a disk of given radius, holding a share of the world's
/// sites.
#[derive(Debug, Clone, Copy)]
pub struct Continent {
    pub center: GeoPoint,
    pub radius_km: f64,
    /// Relative population weight (normalised by the sampler).
    pub weight: f64,
}

/// The default world layout: four continents roughly shaped like the
/// vantage-point spread of the paper's Table 1 (N. America ×2 coasts,
/// Europe, East Asia).
pub fn default_continents() -> Vec<Continent> {
    vec![
        Continent {
            center: GeoPoint { x_km: 0.0, y_km: 0.0 },
            radius_km: 1_800.0,
            weight: 0.3,
        },
        Continent {
            center: GeoPoint { x_km: 4_000.0, y_km: 300.0 },
            radius_km: 1_500.0,
            weight: 0.2,
        },
        Continent {
            center: GeoPoint { x_km: 7_500.0, y_km: -500.0 },
            radius_km: 1_600.0,
            weight: 0.3,
        },
        Continent {
            center: GeoPoint { x_km: 12_500.0, y_km: 400.0 },
            radius_km: 1_400.0,
            weight: 0.2,
        },
    ]
}

/// Sample a site: pick a continent by weight, then a point in its disk
/// (uniform by area). Returns the point and the continent index.
pub fn sample_site<R: Rng + ?Sized>(continents: &[Continent], rng: &mut R) -> (GeoPoint, usize) {
    assert!(!continents.is_empty());
    let total: f64 = continents.iter().map(|c| c.weight).sum();
    let mut x = rng.gen::<f64>() * total;
    let mut idx = 0;
    for (i, c) in continents.iter().enumerate() {
        if x < c.weight {
            idx = i;
            break;
        }
        x -= c.weight;
        idx = i;
    }
    let c = &continents[idx];
    let angle = rng.gen::<f64>() * std::f64::consts::TAU;
    let r = c.radius_km * rng.gen::<f64>().sqrt(); // uniform over the disk
    (
        GeoPoint {
            x_km: c.center.x_km + r * angle.cos(),
            y_km: c.center.y_km + r * angle.sin(),
        },
        idx,
    )
}

/// A route-inflation factor: log-normal around ~1.4× with a heavy tail,
/// floored at 1 (paths are never shorter than geography).
pub fn detour_factor<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    dist::log_normal(rng, 0.32, 0.25).max(1.0)
}

/// RTT between two sites including detour and a per-hop fixed cost
/// (router/serialisation overhead; matters only at short distances).
pub fn rtt_between<R: Rng + ?Sized>(a: &GeoPoint, b: &GeoPoint, rng: &mut R) -> Micros {
    let base = a.base_rtt(b);
    let inflated = base.scale(detour_factor(rng));
    inflated + Micros::from_us(300) // switching overhead floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_util::rng::rng_from;

    #[test]
    fn distance_and_base_rtt() {
        let a = GeoPoint { x_km: 0.0, y_km: 0.0 };
        let b = GeoPoint {
            x_km: 2_000.0,
            y_km: 0.0,
        };
        assert_eq!(a.distance_km(&b), 2_000.0);
        // 2000 km -> 10 ms one way -> 20 ms RTT.
        assert_eq!(a.base_rtt(&b), Micros::from_ms_u64(20));
        assert_eq!(a.base_rtt(&a), Micros::ZERO);
    }

    #[test]
    fn sites_land_inside_their_continent() {
        let continents = default_continents();
        let mut rng = rng_from(1);
        for _ in 0..500 {
            let (p, idx) = sample_site(&continents, &mut rng);
            let c = &continents[idx];
            assert!(
                p.distance_km(&c.center) <= c.radius_km + 1e-9,
                "site escaped its continent"
            );
        }
    }

    #[test]
    fn continent_weights_are_respected() {
        let continents = default_continents();
        let mut rng = rng_from(2);
        let mut counts = vec![0usize; continents.len()];
        for _ in 0..20_000 {
            let (_, idx) = sample_site(&continents, &mut rng);
            counts[idx] += 1;
        }
        // Continent 0 has weight 0.3, continent 1 has 0.2.
        let f0 = counts[0] as f64 / 20_000.0;
        let f1 = counts[1] as f64 / 20_000.0;
        assert!((f0 - 0.3).abs() < 0.03, "f0 {f0}");
        assert!((f1 - 0.2).abs() < 0.03, "f1 {f1}");
    }

    #[test]
    fn detour_never_shrinks_paths() {
        let mut rng = rng_from(3);
        for _ in 0..1000 {
            assert!(detour_factor(&mut rng) >= 1.0);
        }
    }

    #[test]
    fn rtt_between_exceeds_base() {
        let mut rng = rng_from(4);
        let a = GeoPoint { x_km: 0.0, y_km: 0.0 };
        let b = GeoPoint {
            x_km: 1_000.0,
            y_km: 0.0,
        };
        for _ in 0..100 {
            let rtt = rtt_between(&a, &b, &mut rng);
            assert!(rtt >= a.base_rtt(&b), "detour shrank rtt");
        }
    }
}
