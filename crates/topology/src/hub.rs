//! The inter-hub latency matrix.
//!
//! Paper §4: *"We use the Meridian DNS-server latency dataset to simulate
//! latencies between the cluster-hubs: each cluster-hub is represented by
//! a randomly picked DNS server from the dataset. DNS-server pairs in the
//! Meridian dataset have a median latency of around 65 ms."*
//!
//! The Meridian dataset is no longer distributed, so [`HubMatrix`]
//! synthesises an equivalent: hubs are geographic sites (continent model
//! from [`crate::geo`]) with detour-inflated propagation RTTs, then the
//! whole matrix is rescaled so the median pair latency matches the
//! dataset's documented 65 ms. The substitution is recorded in DESIGN.md;
//! a test pins the calibration.

use crate::geo;
use np_util::rng::rng_for;
use np_util::{Micros, Summary};
use rand::Rng;

/// The Meridian dataset's documented median inter-pair latency.
pub const MERIDIAN_MEDIAN_MS: f64 = 65.0;

/// A symmetric matrix of inter-hub RTTs.
#[derive(Debug, Clone)]
pub struct HubMatrix {
    n: usize,
    /// Upper-triangle-inclusive full storage in µs.
    rtt_us: Vec<u64>,
}

impl HubMatrix {
    /// Synthesise `n` hubs calibrated to `median_ms`.
    ///
    /// Tag discipline: RNG stream is `sub_seed(seed, 0x4855_42)` ("HUB").
    pub fn synthetic(n: usize, median_ms: f64, seed: u64) -> HubMatrix {
        assert!(n >= 2, "need at least two hubs");
        let mut rng = rng_for(seed, 0x4855_42);
        let continents = geo::default_continents();
        let sites: Vec<geo::GeoPoint> = (0..n)
            .map(|_| geo::sample_site(&continents, &mut rng).0)
            .collect();
        let mut rtt_us = vec![0u64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let r = geo::rtt_between(&sites[i], &sites[j], &mut rng);
                // Floor: two distinct hubs are never closer than 2 ms —
                // they are, by construction, distinct PoP sites.
                let r = r.max(Micros::from_ms(2.0)).as_us();
                rtt_us[i * n + j] = r;
                rtt_us[j * n + i] = r;
            }
        }
        let mut m = HubMatrix { n, rtt_us };
        m.rescale_to_median(Micros::from_ms(median_ms));
        m
    }

    /// The paper's configuration: calibrated to the Meridian dataset.
    pub fn synthetic_meridian_like(n: usize, seed: u64) -> HubMatrix {
        HubMatrix::synthetic(n, MERIDIAN_MEDIAN_MS, seed)
    }

    fn rescale_to_median(&mut self, target: Micros) {
        let mut pairs: Vec<u64> = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                pairs.push(self.rtt_us[i * self.n + j]);
            }
        }
        pairs.sort_unstable();
        let median = pairs[pairs.len() / 2];
        if median == 0 {
            return;
        }
        let f = target.as_us() as f64 / median as f64;
        for v in &mut self.rtt_us {
            *v = (*v as f64 * f).round() as u64;
        }
    }

    /// Number of hubs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the matrix is empty (never constructed so; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RTT between two hubs (zero on the diagonal).
    #[inline]
    pub fn rtt(&self, a: usize, b: usize) -> Micros {
        Micros(self.rtt_us[a * self.n + b])
    }

    /// Median pair RTT (calibration check).
    pub fn median_pair(&self) -> Micros {
        let mut pairs: Vec<u64> = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                pairs.push(self.rtt_us[i * self.n + j]);
            }
        }
        pairs.sort_unstable();
        Micros(pairs[pairs.len() / 2])
    }

    /// Summary of pair latencies in ms (for reports).
    pub fn pair_summary_ms(&self) -> Summary {
        let mut v = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                v.push(self.rtt_us[i * self.n + j] as f64 / 1_000.0);
            }
        }
        Summary::of(&v)
    }

    /// Pick `k` distinct random hub indices (the paper picks a random DNS
    /// server per cluster-hub).
    pub fn pick_hubs<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<usize> {
        use rand::seq::SliceRandom;
        assert!(k <= self.n, "not enough hubs: want {k}, have {}", self.n);
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_util::rng::rng_from;

    #[test]
    fn median_is_calibrated() {
        let m = HubMatrix::synthetic_meridian_like(120, 7);
        let med = m.median_pair().as_ms();
        assert!(
            (med - MERIDIAN_MEDIAN_MS).abs() < 1.0,
            "median {med} vs target {MERIDIAN_MEDIAN_MS}"
        );
    }

    #[test]
    fn matrix_is_symmetric_zero_diagonal() {
        let m = HubMatrix::synthetic(40, 65.0, 3);
        for i in 0..m.len() {
            assert_eq!(m.rtt(i, i), Micros::ZERO);
            for j in 0..m.len() {
                assert_eq!(m.rtt(i, j), m.rtt(j, i));
            }
        }
    }

    #[test]
    fn hubs_are_never_too_close() {
        let m = HubMatrix::synthetic(60, 65.0, 11);
        let mut min = Micros::INFINITY;
        for i in 0..m.len() {
            for j in (i + 1)..m.len() {
                min = min.min(m.rtt(i, j));
            }
        }
        // 2 ms floor, possibly scaled during calibration; it must stay
        // well above end-network latencies (100 µs).
        assert!(min > Micros::from_ms(1.0), "min hub distance {min}");
    }

    #[test]
    fn distribution_is_multimodal_spread() {
        let m = HubMatrix::synthetic_meridian_like(100, 5);
        let s = m.pair_summary_ms();
        // Intra-continent pairs well below the median, inter-continent far
        // above: expect a wide spread.
        assert!(s.min < 35.0, "min {}", s.min);
        assert!(s.max > 100.0, "max {}", s.max);
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = HubMatrix::synthetic(30, 65.0, 9);
        let b = HubMatrix::synthetic(30, 65.0, 9);
        let c = HubMatrix::synthetic(30, 65.0, 10);
        assert_eq!(a.rtt(3, 17), b.rtt(3, 17));
        assert_ne!(
            (0..30).map(|i| a.rtt(0, i).as_us()).sum::<u64>(),
            (0..30).map(|i| c.rtt(0, i).as_us()).sum::<u64>()
        );
    }

    #[test]
    fn pick_hubs_distinct() {
        let m = HubMatrix::synthetic(25, 65.0, 2);
        let mut rng = rng_from(1);
        let picked = m.pick_hubs(10, &mut rng);
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "hubs must be distinct");
    }
}
