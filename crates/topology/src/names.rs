//! Router naming and rockettrace-style annotations.
//!
//! The paper's PoP identification rests on rockettrace parsing router DNS
//! names into `(AS, city)` annotations — and on the failure mode it
//! acknowledges: *"if the name is mis-configured, this leads to erroneous
//! results."* We model annotations as data (`anno_as`, `anno_city` on each
//! router, possibly deliberately wrong) and render the human-readable
//! names from them, so both the happy path and the noise path of the
//! pipeline are exercised.

/// An `(AS, city)` annotation as rockettrace would recover it from a
/// router's DNS name — possibly wrong if the name is mis-configured.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Annotation {
    pub as_id: u16,
    pub city_id: u16,
}

/// Render a synthetic city name ("nyc03"-style: three letters + number).
pub fn city_name(city_id: u16) -> String {
    const SYLLABLES: [&str; 16] = [
        "ash", "bru", "chi", "dal", "fra", "hkg", "lax", "lon", "mad", "nyc", "par", "sea", "sin",
        "syd", "tok", "vie",
    ];
    format!(
        "{}{:02}",
        SYLLABLES[(city_id as usize) % SYLLABLES.len()],
        city_id / SYLLABLES.len() as u16
    )
}

/// Render an AS name ("as701"-style).
pub fn as_name(as_id: u16) -> String {
    format!("as{}", 700 + as_id as u32)
}

/// Render a full rockettrace-style router name, e.g.
/// `ge-3-7.nyc03.as712.net`.
pub fn router_name(anno: Annotation, port_hint: u32) -> String {
    format!(
        "ge-{}-{}.{}.{}.net",
        port_hint % 8,
        (port_hint / 8) % 16,
        city_name(anno.city_id),
        as_name(anno.as_id)
    )
}

/// Parse a router name back to its annotation — the rockettrace step.
///
/// Returns `None` for names that do not follow the convention (the
/// pipeline treats those as unannotated hops).
pub fn parse_router_name(name: &str) -> Option<Annotation> {
    let mut parts = name.split('.');
    let _port = parts.next()?;
    let city = parts.next()?;
    let asn = parts.next()?;
    let tld = parts.next()?;
    if tld != "net" || parts.next().is_some() {
        return None;
    }
    let as_id: u32 = asn.strip_prefix("as")?.parse().ok()?;
    let as_id = as_id.checked_sub(700)? as u16;
    if city.len() < 4 {
        return None;
    }
    let (syll, num) = city.split_at(3);
    let num: u16 = num.parse().ok()?;
    const SYLLABLES: [&str; 16] = [
        "ash", "bru", "chi", "dal", "fra", "hkg", "lax", "lon", "mad", "nyc", "par", "sea", "sin",
        "syd", "tok", "vie",
    ];
    let idx = SYLLABLES.iter().position(|&s| s == syll)? as u16;
    Some(Annotation {
        as_id,
        city_id: num * SYLLABLES.len() as u16 + idx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for city_id in [0u16, 5, 16, 99, 255] {
            for as_id in [0u16, 7, 300] {
                let anno = Annotation { as_id, city_id };
                let name = router_name(anno, 13);
                assert_eq!(
                    parse_router_name(&name),
                    Some(anno),
                    "roundtrip failed for {name}"
                );
            }
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        assert_eq!(parse_router_name("10.1.2.3"), None);
        assert_eq!(parse_router_name("ge-0-0.nyc03.as712.com"), None);
        assert_eq!(parse_router_name("random-string"), None);
        assert_eq!(parse_router_name("ge-0-0.zzz01.as712.net"), None);
        assert_eq!(parse_router_name(""), None);
    }

    #[test]
    fn distinct_cities_have_distinct_names() {
        let a = city_name(3);
        let b = city_name(19); // same syllable index + 1 generation
        assert_ne!(a, b);
        assert_eq!(city_name(3), city_name(3));
    }
}
