//! # np-topology
//!
//! Synthetic Internet worlds for the `nearest-peer` reproduction
//! (Vishnumurthy & Francis, IMC 2008).
//!
//! Two worlds are generated here:
//!
//! 1. [`cluster_world::ClusterWorld`] — the abstract latency world of the
//!    paper's §4 Meridian simulations: clusters of end-networks hanging
//!    off cluster-hubs, hub-to-end-network latencies
//!    `U((1-δ)·m, (1+δ)·m)` with `m ~ U(4 ms, 6 ms)`, 100 µs inside an
//!    end-network, and inter-hub latencies drawn from a synthetic stand-in
//!    for the Meridian DNS dataset (median pair ≈ 65 ms, see
//!    [`hub::HubMatrix`]).
//! 2. [`internet::InternetModel`] — a router-level Internet for the
//!    measurement studies of §3 and §5: ASes deploy PoPs in cities, access
//!    trees hang off PoPs (the "last-hop star" of Figure 1), end-networks
//!    and home users attach to the trees, DNS servers and Azureus-like
//!    peers live in them, IP prefixes and domain names are assigned, and
//!    cross-links inside a region create the alternate paths that make
//!    latency prediction imperfect (the Figure 4 trend).
//!
//! Everything is generated deterministically from a `u64` seed.

pub mod cluster_world;
pub mod geo;
pub mod hub;
pub mod internet;
pub mod ip;
pub mod names;

pub use cluster_world::{ClusterWorld, ClusterWorldSpec};
pub use hub::HubMatrix;
pub use internet::{
    Attachment, EndNet, EndNetId, Host, HostId, HostKind, InternetModel, OrgId, Pop, PopId,
    Router, RouterId, RouterKind, WorldParams,
};
