//! The paper-§4 cluster world.
//!
//! > "To simulate the clustering condition in the inter-peer latency
//! > matrix, we create clusters of end-networks that in turn contain
//! > peers. [...] we set the mean latency between the cluster-hub and the
//! > end-networks in the cluster to be uniformly distributed between 4 ms
//! > and 6 ms. We use a parameter δ [...] the latency of each end-network
//! > to its cluster-hub is uniformly distributed between (1 − δ) and
//! > (1 + δ) times the mean latency [...] All end-networks in our
//! > simulation contain two peers each. Peers that are both in the same
//! > end-network have a latency of 100 µs between them [...] Two peers in
//! > different end-networks have an inter-peer latency equal to the
//! > latency between the end-networks that contain them (where the path
//! > starts from one peer, goes up to its cluster-hub, across to the
//! > cluster-hub of the second peer, and down to the second peer)."
//!
//! [`ClusterWorld`] implements that construction exactly, with the
//! synthetic [`HubMatrix`] standing in for the Meridian dataset.

use crate::hub::HubMatrix;
use np_metric::{HierarchicalWorld, LatencyMatrix, PeerId, ShardedWorld};
use np_util::dist;
use np_util::rng::rng_for;
use np_util::Micros;
use std::sync::Arc;

/// Parameters of the §4 world.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterWorldSpec {
    /// Number of clusters (PoPs).
    pub clusters: usize,
    /// End-networks per cluster.
    pub en_per_cluster: usize,
    /// Peers per end-network (paper: 2).
    pub peers_per_en: usize,
    /// Latency variation parameter δ ∈ [0, 1].
    pub delta: f64,
    /// Range of per-cluster mean hub latency in ms (paper: 4–6 ms).
    pub mean_hub_ms: (f64, f64),
    /// Intra-end-network latency (paper: 100 µs).
    pub intra_en: Micros,
    /// Number of hubs to synthesise the hub matrix over (>= clusters).
    pub hub_pool: usize,
}

impl ClusterWorldSpec {
    /// The paper's Figure 8/9 configuration: ~2,500 peers total, 2 peers
    /// per end-network, the given end-networks per cluster, and as many
    /// clusters as fit the budget.
    ///
    /// # Panics
    /// Panics when `en_per_cluster` is 0.
    pub fn paper(en_per_cluster: usize, delta: f64) -> ClusterWorldSpec {
        assert!(en_per_cluster > 0);
        let peers_per_en = 2;
        let total_peers = 2_500usize;
        let clusters = (total_peers / (en_per_cluster * peers_per_en)).max(1);
        ClusterWorldSpec {
            clusters,
            en_per_cluster,
            peers_per_en,
            delta,
            mean_hub_ms: (4.0, 6.0),
            intra_en: Micros::from_us(100),
            hub_pool: clusters.max(2),
        }
    }

    /// Total number of peers in the world.
    pub fn total_peers(&self) -> usize {
        self.clusters * self.en_per_cluster * self.peers_per_en
    }
}

/// The generated world: peer labels plus the latency rule.
///
/// Shared state (`hubs`, `en_hub_lat`) sits behind `Arc` so a clone is
/// O(1) — the hierarchical backend retains a clone inside its lazy
/// block generator, and at 2,500 clusters the hub matrix alone is
/// ~25 MB that must not be duplicated.
#[derive(Debug, Clone)]
pub struct ClusterWorld {
    spec: ClusterWorldSpec,
    hubs: Arc<HubMatrix>,
    /// Hub index (into `hubs`) of each cluster.
    cluster_hub: Arc<Vec<usize>>,
    /// Hub latency of each end-network, indexed `cluster * en_per_cluster + en`.
    en_hub_lat: Arc<Vec<Micros>>,
}

impl ClusterWorld {
    /// Generate deterministically from `seed`.
    ///
    /// Sub-streams: hub matrix `0x485542`, world assignment `0x435754`.
    pub fn generate(spec: ClusterWorldSpec, seed: u64) -> ClusterWorld {
        assert!(
            (0.0..=1.0).contains(&spec.delta),
            "delta must be in [0,1], got {}",
            spec.delta
        );
        assert!(spec.clusters >= 1 && spec.en_per_cluster >= 1 && spec.peers_per_en >= 1);
        let hubs = HubMatrix::synthetic_meridian_like(spec.hub_pool.max(2), seed);
        let mut rng = rng_for(seed, 0x43_57_54);
        let cluster_hub = hubs.pick_hubs(spec.clusters, &mut rng);
        let mut en_hub_lat = Vec::with_capacity(spec.clusters * spec.en_per_cluster);
        for _c in 0..spec.clusters {
            // Per-cluster mean hub latency: U(4 ms, 6 ms).
            let mean_ms = dist::uniform(&mut rng, spec.mean_hub_ms.0, spec.mean_hub_ms.1);
            for _e in 0..spec.en_per_cluster {
                // Per-end-network: U((1-δ)m, (1+δ)m).
                let lat_ms = dist::uniform(
                    &mut rng,
                    (1.0 - spec.delta) * mean_ms,
                    // Half-open sampling; at δ=0 lo==hi and uniform()
                    // returns the mean exactly.
                    (1.0 + spec.delta) * mean_ms,
                );
                en_hub_lat.push(Micros::from_ms(lat_ms));
            }
        }
        ClusterWorld {
            spec,
            hubs: Arc::new(hubs),
            cluster_hub: Arc::new(cluster_hub),
            en_hub_lat: Arc::new(en_hub_lat),
        }
    }

    /// The generation spec.
    pub fn spec(&self) -> &ClusterWorldSpec {
        &self.spec
    }

    /// Total peers.
    pub fn len(&self) -> usize {
        self.spec.total_peers()
    }

    /// True iff the world holds no peers (specs forbid this).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cluster index of a peer.
    #[inline]
    pub fn cluster_of(&self, p: PeerId) -> usize {
        p.idx() / (self.spec.en_per_cluster * self.spec.peers_per_en)
    }

    /// Global end-network index of a peer.
    #[inline]
    pub fn en_of(&self, p: PeerId) -> usize {
        p.idx() / self.spec.peers_per_en
    }

    /// Do two peers share an end-network (the "exact-closest" relation)?
    #[inline]
    pub fn same_en(&self, a: PeerId, b: PeerId) -> bool {
        self.en_of(a) == self.en_of(b)
    }

    /// Do two peers share a cluster?
    #[inline]
    pub fn same_cluster(&self, a: PeerId, b: PeerId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Latency from a peer('s end-network) to its cluster-hub.
    #[inline]
    pub fn hub_latency(&self, p: PeerId) -> Micros {
        self.en_hub_lat[self.en_of(p)]
    }

    /// Ground-truth RTT between two peers, per the paper's three-case
    /// rule.
    pub fn rtt(&self, a: PeerId, b: PeerId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        if self.same_en(a, b) {
            return self.spec.intra_en;
        }
        let up = self.hub_latency(a);
        let down = self.hub_latency(b);
        if self.same_cluster(a, b) {
            up + down
        } else {
            let ha = self.cluster_hub[self.cluster_of(a)];
            let hb = self.cluster_hub[self.cluster_of(b)];
            up + self.hubs.rtt(ha, hb) + down
        }
    }

    /// Materialise the dense latency matrix (the object the Meridian
    /// simulator consumes), on the ambient thread count
    /// (`$NP_THREADS`, else all cores).
    ///
    /// `rtt` is a pure function of the generated world, so the parallel
    /// row-blocked build is bit-identical to a serial one at any thread
    /// count.
    pub fn to_matrix(&self) -> LatencyMatrix {
        self.to_matrix_threads(np_util::parallel::resolve_threads(None))
    }

    /// [`ClusterWorld::to_matrix`] with an explicit worker count.
    pub fn to_matrix_threads(&self, threads: usize) -> LatencyMatrix {
        LatencyMatrix::build_par(self.len(), threads, |a, b| self.rtt(a, b))
    }

    /// Materialise the block-compressed [`ShardedWorld`] backend:
    /// clusters become shards, with one dense block of exact RTTs per
    /// cluster and the hub summary read straight from the generator
    /// (per-peer hub latency + hub-to-hub matrix), on the ambient
    /// thread count.
    ///
    /// On this world the hub summary is **exact**, not approximate: the
    /// generator's inter-cluster rule *is* `up + hub-to-hub + down`, and
    /// the sharded backend reassembles the same whole-microsecond sum.
    /// Memory drops from the dense `n²` floats to
    /// `Σ cluster² + clusters² + O(n)` — the difference between 40 GB
    /// and tens of MB at 100 k peers.
    pub fn to_sharded(&self) -> ShardedWorld {
        self.to_sharded_threads(np_util::parallel::resolve_threads(None))
    }

    /// [`ClusterWorld::to_sharded`] with an explicit worker count.
    /// Bit-identical at any thread count (row-blocked block fills).
    pub fn to_sharded_threads(&self, threads: usize) -> ShardedWorld {
        let n = self.len();
        let shard_of: Vec<u32> = (0..n as u32)
            .map(|i| self.cluster_of(PeerId(i)) as u32)
            .collect();
        let s = self.spec.clusters;
        let mut hub_rtt = vec![0.0f32; s * s];
        for a in 0..s {
            for b in (a + 1)..s {
                let v = self
                    .hubs
                    .rtt(self.cluster_hub[a], self.cluster_hub[b])
                    .as_us() as f32;
                hub_rtt[a * s + b] = v;
                hub_rtt[b * s + a] = v;
            }
        }
        let offset: Vec<f32> = (0..n as u32)
            .map(|i| self.hub_latency(PeerId(i)).as_us() as f32)
            .collect();
        ShardedWorld::build_par(&shard_of, hub_rtt, offset, threads, |a, b| self.rtt(a, b))
    }

    /// Materialise the two-level [`HierarchicalWorld`] backend:
    /// clusters become shards as in [`ClusterWorld::to_sharded`], the
    /// level-1 hub summary is read straight from the generator (so at
    /// `super_shards == 1` the store is bit-identical to the sharded
    /// backend — the collapse law `tests/world_equivalence.rs` pins),
    /// and per-cluster blocks are materialised lazily from a retained
    /// O(1) clone of this world, resident only up to
    /// `cache_budget_bytes`.
    ///
    /// With more than one super-shard, shards are grouped contiguously
    /// and cross-group hub distances detour through each group's
    /// medoid hub — the only approximation the second level adds on
    /// these worlds.
    pub fn to_hierarchical(
        &self,
        super_shards: usize,
        cache_budget_bytes: usize,
    ) -> HierarchicalWorld {
        let n = self.len();
        let shard_of: Vec<u32> = (0..n as u32)
            .map(|i| self.cluster_of(PeerId(i)) as u32)
            .collect();
        let offset: Vec<f32> = (0..n as u32)
            .map(|i| self.hub_latency(PeerId(i)).as_us() as f32)
            .collect();
        let gen = self.clone();
        HierarchicalWorld::build_lazy(
            &shard_of,
            super_shards,
            offset,
            |a, b| {
                if a == b {
                    0
                } else {
                    self.hubs.rtt(self.cluster_hub[a], self.cluster_hub[b]).as_us()
                }
            },
            cache_budget_bytes,
            move |a, b| gen.rtt(a, b),
        )
    }

    /// The peer in the same end-network as `p` (its exact-closest peer),
    /// when end-networks hold exactly two peers.
    pub fn en_partner(&self, p: PeerId) -> Option<PeerId> {
        if self.spec.peers_per_en != 2 {
            return None;
        }
        let base = (p.idx() / 2) * 2;
        let partner = if p.idx() == base { base + 1 } else { base };
        Some(PeerId(partner as u32))
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.len() as u32).map(PeerId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterWorld {
        ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 4,
                en_per_cluster: 5,
                peers_per_en: 2,
                delta: 0.2,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 8,
            },
            42,
        )
    }

    #[test]
    fn paper_spec_budget() {
        let s = ClusterWorldSpec::paper(125, 0.2);
        assert_eq!(s.clusters, 10);
        assert_eq!(s.total_peers(), 2_500);
        let s5 = ClusterWorldSpec::paper(5, 0.2);
        assert_eq!(s5.clusters, 250);
    }

    #[test]
    fn labels_partition_peers() {
        let w = small();
        assert_eq!(w.len(), 40);
        // Peer 0,1 share EN 0; peers 0..10 share cluster 0.
        assert!(w.same_en(PeerId(0), PeerId(1)));
        assert!(!w.same_en(PeerId(1), PeerId(2)));
        assert!(w.same_cluster(PeerId(0), PeerId(9)));
        assert!(!w.same_cluster(PeerId(9), PeerId(10)));
        assert_eq!(w.en_partner(PeerId(7)), Some(PeerId(6)));
        assert_eq!(w.en_partner(PeerId(6)), Some(PeerId(7)));
    }

    #[test]
    fn latency_rule_three_cases() {
        let w = small();
        // Same EN: exactly 100 µs.
        assert_eq!(w.rtt(PeerId(0), PeerId(1)), Micros::from_us(100));
        // Same cluster, different EN: sum of hub latencies, within
        // [2*(1-δ)*4, 2*(1+δ)*6] ms.
        let d = w.rtt(PeerId(0), PeerId(2)).as_ms();
        assert!((6.4..=14.4).contains(&d), "intra-cluster rtt {d}");
        // Different clusters: strictly larger (hub-hub >= 2 ms floor).
        let x = w.rtt(PeerId(0), PeerId(11));
        assert!(x > w.rtt(PeerId(0), PeerId(2)));
        // Symmetry + identity.
        assert_eq!(w.rtt(PeerId(3), PeerId(14)), w.rtt(PeerId(14), PeerId(3)));
        assert_eq!(w.rtt(PeerId(5), PeerId(5)), Micros::ZERO);
    }

    #[test]
    fn hub_latencies_respect_delta_band() {
        for &(delta, lo_ms, hi_ms) in &[(0.0, 4.0, 6.0), (0.5, 2.0, 9.0), (1.0, 0.0, 12.0)] {
            let w = ClusterWorld::generate(
                ClusterWorldSpec {
                    clusters: 6,
                    en_per_cluster: 20,
                    peers_per_en: 2,
                    delta,
                    mean_hub_ms: (4.0, 6.0),
                    intra_en: Micros::from_us(100),
                    hub_pool: 6,
                },
                9,
            );
            for p in w.peers() {
                let h = w.hub_latency(p).as_ms();
                assert!(
                    (lo_ms..=hi_ms).contains(&h),
                    "delta {delta}: hub latency {h} outside [{lo_ms},{hi_ms}]"
                );
            }
        }
    }

    #[test]
    fn delta_zero_means_identical_en_latencies_within_cluster() {
        let w = ClusterWorld::generate(
            ClusterWorldSpec {
                clusters: 3,
                en_per_cluster: 10,
                peers_per_en: 2,
                delta: 0.0,
                mean_hub_ms: (4.0, 6.0),
                intra_en: Micros::from_us(100),
                hub_pool: 4,
            },
            5,
        );
        for c in 0..3u32 {
            let first = w.hub_latency(PeerId(c * 20));
            for p in 0..20u32 {
                assert_eq!(
                    w.hub_latency(PeerId(c * 20 + p)),
                    first,
                    "δ=0 must collapse the cluster to one latency"
                );
            }
        }
    }

    #[test]
    fn matrix_matches_world() {
        let w = small();
        let m = w.to_matrix();
        m.validate().expect("valid");
        for a in w.peers() {
            for b in w.peers() {
                assert_eq!(m.rtt(a, b), w.rtt(a, b));
            }
        }
    }

    #[test]
    fn sharded_backend_is_exact_on_cluster_worlds() {
        use np_metric::WorldStore;
        let w = small();
        let sharded = w.to_sharded_threads(2);
        sharded.validate().expect("valid");
        assert_eq!(sharded.n_shards(), 4);
        assert_eq!(WorldStore::len(&sharded), w.len());
        // The hub summary reassembles the generator's own rule: every
        // pair — intra-EN, intra-cluster, inter-cluster — is exact.
        for a in w.peers() {
            for b in w.peers() {
                assert_eq!(sharded.rtt(a, b), w.rtt(a, b), "rtt({a},{b})");
            }
        }
        // And it really is compressed relative to the dense bytes.
        let dense = w.to_matrix();
        assert!(sharded.approx_bytes() < WorldStore::approx_bytes(&dense));
    }

    #[test]
    fn hierarchical_backend_collapses_to_sharded_and_stays_exact_within_groups() {
        use np_metric::WorldStore;
        let w = small();
        let sharded = w.to_sharded_threads(2);
        // One super-shard: bit-identical to the sharded store.
        let one = w.to_hierarchical(1, usize::MAX);
        for a in w.peers() {
            for b in w.peers() {
                assert_eq!(one.rtt(a, b), sharded.rtt(a, b), "G=1 rtt({a},{b})");
            }
        }
        // Two super-shards under a starved cache: still exact on this
        // generator within groups, never an underestimate across.
        let two = w.to_hierarchical(2, 1);
        for a in w.peers() {
            for b in w.peers() {
                assert!(two.rtt(a, b) >= w.rtt(a, b), "underestimate rtt({a},{b})");
            }
        }
        assert!(two.cache_stats().evictions > 0);
    }

    #[test]
    fn ground_truth_nearest_is_en_partner() {
        let w = small();
        let m = w.to_matrix();
        let members: Vec<PeerId> = w.peers().collect();
        for p in w.peers() {
            let nearest = m.nearest_within(p, &members).expect("others");
            assert_eq!(
                Some(nearest),
                w.en_partner(p),
                "exact-closest must be the end-network partner"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.rtt(PeerId(3), PeerId(29)), b.rtt(PeerId(3), PeerId(29)));
    }

    proptest::proptest! {
        /// The triangle inequality holds across all three latency cases
        /// (the paper's routing construction is metric by design).
        #[test]
        fn prop_triangle_inequality(seed in 0u64..50) {
            let w = ClusterWorld::generate(
                ClusterWorldSpec {
                    clusters: 3,
                    en_per_cluster: 3,
                    peers_per_en: 2,
                    delta: 0.4,
                    mean_hub_ms: (4.0, 6.0),
                    intra_en: Micros::from_us(100),
                    hub_pool: 4,
                },
                seed,
            );
            let n = w.len() as u32;
            for a in 0..n {
                for b in 0..n {
                    for c in 0..n {
                        let (a, b, c) = (PeerId(a), PeerId(b), PeerId(c));
                        // Hub-matrix triangle violations can exist (real
                        // latency spaces have them too); but the star
                        // construction within a cluster must be metric.
                        if w.same_cluster(a, b) && w.same_cluster(b, c) && w.same_cluster(a, c) {
                            proptest::prop_assert!(
                                w.rtt(a, c) <= w.rtt(a, b) + w.rtt(b, c) + Micros(1)
                            );
                        }
                    }
                }
            }
        }
    }
}
