//! Ground-truth routing over the generated world.
//!
//! Latency rules (mirroring §2 of the paper):
//!
//! * hosts behind the **same attach router** (same end-network / same
//!   DSLAM) talk through it at the sum of their access latencies — the
//!   paper's "message routed entirely within the end-network";
//! * hosts in the **same PoP region** take the shortest path through the
//!   region graph (tree uplinks + cross-links), i.e. they share a router
//!   at or below the PoP;
//! * hosts in **different PoPs** go up to their cores, across the
//!   backbone (all-pairs PoP distances), and back down.
//!
//! Traceroute paths, by contrast, follow the *tree* view (and the PoP
//! shortest-path at the backbone level): cross-links are invisible to
//! them, exactly like real traceroute against an IGP with link-state
//! shortcuts. The gap between the two is what Figures 3–4 measure.

use super::*;
use np_metric::graph::NodeId;

/// One hop of a simulated traceroute: the router and the ground-truth RTT
/// from the probing host to it. Responsiveness filtering and noise are the
/// probe layer's job (`np-probe`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHop {
    pub router: RouterId,
    pub rtt: Micros,
}

impl InternetModel {
    /// Shortest-path latency between two routers of the same PoP region.
    pub(crate) fn region_dist(&self, a: RouterId, b: RouterId) -> Micros {
        let ra = self.router(a);
        let rb = self.router(b);
        debug_assert_eq!(ra.pop, rb.pop, "region_dist across PoPs");
        if a == b {
            return Micros::ZERO;
        }
        self.pops[ra.pop.idx()]
            .graph
            .distance(NodeId(ra.local), NodeId(rb.local))
    }

    /// Ground-truth RTT between two hosts.
    pub fn rtt(&self, a: HostId, b: HostId) -> Micros {
        if a == b {
            return Micros::ZERO;
        }
        let ha = self.host(a);
        let hb = self.host(b);
        let ra = self.attach_router(a);
        let rb = self.attach_router(b);
        if ra == rb {
            // Same end-network or same DSLAM: via the local switch fabric.
            return ha.access_lat + hb.access_lat;
        }
        let pa = self.router(ra).pop;
        let pb = self.router(rb).pop;
        if pa == pb {
            ha.access_lat + self.region_dist(ra, rb) + hb.access_lat
        } else {
            ha.access_lat
                + self.router(ra).core_dist
                + self.pop_rtt(pa, pb)
                + self.router(rb).core_dist
                + hb.access_lat
        }
    }

    /// Ground-truth RTT from a host to a router.
    pub fn rtt_host_router(&self, h: HostId, r: RouterId) -> Micros {
        let ra = self.attach_router(h);
        let access = self.host(h).access_lat;
        if r == ra {
            return access;
        }
        let pa = self.router(ra).pop;
        let pr = self.router(r).pop;
        if pa == pr {
            access + self.region_dist(ra, r)
        } else {
            access
                + self.router(ra).core_dist
                + self.pop_rtt(pa, pr)
                + self.router(r).core_dist
        }
    }

    /// The tree path from a router up to its PoP core, inclusive of both.
    pub fn tree_path_to_core(&self, r: RouterId) -> Vec<RouterId> {
        let mut path = vec![r];
        let mut cur = r;
        while let Some(p) = self.router(cur).parent {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.pops[self.router(r).pop.idx()].core);
        path
    }

    /// The PoP-level path from vantage point `vp_idx`'s PoP to `dest`
    /// (inclusive of both endpoints).
    fn pop_path(&self, vp_idx: usize, dest: PopId) -> Vec<PopId> {
        let mut path = vec![dest];
        let parents = &self.vp_pop_parent[vp_idx];
        let mut cur = dest;
        while parents[cur.idx()] != u16::MAX {
            cur = PopId(parents[cur.idx()]);
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Which side a multihomed destination is reached through from a
    /// given vantage point. Returns `(pop, Some(attach_router))` for the
    /// primary side and `(pop2, None)` for the secondary side, where the
    /// secondary attach infrastructure is invisible to traceroute.
    pub fn side_from_vp(&self, vp_idx: usize, target: HostId) -> (PopId, Option<RouterId>) {
        let attach = self.attach_router(target);
        let primary_pop = self.router(attach).pop;
        let en = self.end_net_of(target);
        let vp_pop = self.pop_of(self.vantage_points[vp_idx]);
        if let Some(e) = en {
            if let Some(pop2) = self.end_nets[e.idx()].secondary_pop {
                let via_primary =
                    self.pop_rtt(vp_pop, primary_pop) + self.router(attach).core_dist;
                let via_secondary = self.pop_rtt(vp_pop, pop2) + self.router(attach).up_lat;
                if via_secondary < via_primary {
                    return (pop2, None);
                }
            }
        }
        (primary_pop, Some(attach))
    }

    /// The VP-side prefix of every traceroute from vantage point
    /// `vp_idx`: its access chain up to its PoP core, with RTTs. This is
    /// identical for every target, so pipelines cache it
    /// ([`InternetModel::trace_route_with_prefix`]) — a traceroute
    /// campaign over 156 k peers would otherwise re-run the VP-region
    /// shortest paths a million times.
    pub fn vp_chain(&self, vp_idx: usize) -> Vec<TraceHop> {
        let vp = self.vantage_points[vp_idx];
        self.tree_path_to_core(self.attach_router(vp))
            .into_iter()
            .map(|r| TraceHop {
                router: r,
                rtt: self.rtt_host_router(vp, r),
            })
            .collect()
    }

    /// Simulated traceroute (ground truth, all routers listed regardless
    /// of responsiveness) from vantage point `vp_idx` to `target`.
    ///
    /// The path is: the VP's access chain up to its PoP core, the
    /// backbone PoP cores along the shortest PoP path, then the
    /// destination region's tree path from the core down to the attach
    /// router. Hop RTTs are ground-truth host→router latencies, so they
    /// can be locally non-monotone when cross-links shorten a later hop —
    /// as in real traces.
    pub fn trace_route(&self, vp_idx: usize, target: HostId) -> Vec<TraceHop> {
        let chain = self.vp_chain(vp_idx);
        self.trace_route_with_prefix(vp_idx, target, &chain)
    }

    /// [`InternetModel::trace_route`] with a precomputed
    /// [`InternetModel::vp_chain`] prefix.
    pub fn trace_route_with_prefix(
        &self,
        vp_idx: usize,
        target: HostId,
        chain: &[TraceHop],
    ) -> Vec<TraceHop> {
        let vp = self.vantage_points[vp_idx];
        let mut out: Vec<TraceHop> = chain.to_vec();
        let mut hops: Vec<RouterId> = Vec::new();
        let vp_pop = self.pop_of(vp);
        let (dest_pop, dest_attach) = self.side_from_vp(vp_idx, target);
        // Backbone cores (skip the VP's own, already present).
        for pop in self.pop_path(vp_idx, dest_pop) {
            if pop != vp_pop {
                hops.push(self.pops[pop.idx()].core);
            }
        }
        // Destination region: core down to the attach router (primary
        // side only; a secondary side's access gear is invisible).
        if let Some(attach) = dest_attach {
            let mut down = self.tree_path_to_core(attach);
            down.reverse();
            // The core is already in `hops` (it terminates the backbone
            // segment) unless the VP and target share a PoP.
            let skip = usize::from(down.first() == Some(&self.pops[dest_pop.idx()].core));
            hops.extend(down.into_iter().skip(skip));
        }
        hops.dedup();
        let chain_last = out.last().map(|h| h.router);
        out.extend(hops.into_iter().filter(|&r| Some(r) != chain_last).map(|r| TraceHop {
            router: r,
            rtt: self.rtt_host_router(vp, r),
        }));
        out
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// Structural invariants every generated world must satisfy.
    pub fn assert_world_invariants(w: &InternetModel) {
        // Router/region consistency.
        for (p, pop) in w.pops.iter().enumerate() {
            let core = w.router(pop.core);
            assert_eq!(core.kind, RouterKind::PopCore);
            assert!(core.parent.is_none());
            for (local, &rid) in pop.routers.iter().enumerate() {
                let r = w.router(rid);
                assert_eq!(r.pop.idx(), p, "router in wrong region");
                assert_eq!(r.local as usize, local, "local index mismatch");
                if let Some(parent) = r.parent {
                    assert_eq!(w.router(parent).pop.idx(), p, "parent across regions");
                }
                // Shortest path to core can't be longer than the tree path.
                assert!(r.core_dist <= r.pop_lat, "core_dist > tree pop_lat");
                if r.parent.is_some() {
                    assert!(r.up_lat > Micros::ZERO);
                }
            }
        }
        // Host ranges match kinds.
        for h in w.dns_servers() {
            assert!(matches!(w.host(h).kind, HostKind::Dns { .. }));
        }
        for h in w.azureus_peers() {
            assert!(matches!(w.host(h).kind, HostKind::Azureus));
        }
        for &v in &w.vantage_points {
            assert!(matches!(w.host(v).kind, HostKind::Vantage));
        }
        // RTT sanity on a deterministic sample.
        let sample: Vec<HostId> = (0..w.hosts.len() as u32)
            .step_by((w.hosts.len() / 50).max(1))
            .map(HostId)
            .collect();
        for &a in &sample {
            assert_eq!(w.rtt(a, a), Micros::ZERO);
            for &b in &sample {
                let ab = w.rtt(a, b);
                assert_eq!(ab, w.rtt(b, a), "rtt asymmetric");
                if a != b {
                    assert!(ab > Micros::ZERO);
                    assert!(ab < Micros::from_secs(2.0), "absurd rtt {ab}");
                }
            }
        }
    }

    #[test]
    fn traceroute_structure() {
        let w = InternetModel::generate(WorldParams::quick_scale(), 3);
        let target = w.azureus_peers().next().expect("peers exist");
        let trace = w.trace_route(0, target);
        assert!(trace.len() >= 2, "trace too short");
        // First hop: the VP's gateway, at sub-ms RTT.
        assert!(trace[0].rtt < Micros::from_ms(2.0));
        // Last hop: the target's attach router (stable primary side).
        let (_, attach) = w.side_from_vp(0, target);
        if let Some(attach) = attach {
            assert_eq!(trace.last().expect("non-empty").router, attach);
        }
        // Hops are distinct.
        let mut seen: Vec<RouterId> = trace.iter().map(|h| h.router).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), trace.len(), "duplicate hop");
    }

    #[test]
    fn same_en_rtt_is_lan_scale() {
        let w = InternetModel::generate(WorldParams::quick_scale(), 3);
        // Find two DNS servers in the same end-network.
        let mut by_en = std::collections::HashMap::new();
        for h in w.dns_servers() {
            if let Some(e) = w.end_net_of(h) {
                by_en.entry(e).or_insert_with(Vec::new).push(h);
            }
        }
        let pair = by_en
            .values()
            .find(|v| v.len() >= 2)
            .expect("some org has 2+ servers in one EN");
        let d = w.rtt(pair[0], pair[1]);
        assert!(
            d < Micros::from_ms(1.0),
            "same-EN latency should be LAN-scale, got {d}"
        );
    }

    #[test]
    fn cross_pop_rtt_exceeds_intra_pop() {
        let w = InternetModel::generate(WorldParams::quick_scale(), 3);
        let hosts: Vec<HostId> = w.dns_servers().collect();
        let mut intra = Vec::new();
        let mut cross = Vec::new();
        for (i, &a) in hosts.iter().enumerate().take(400) {
            for &b in hosts.iter().skip(i + 1).take(40) {
                let d = w.rtt(a, b).as_ms();
                if w.pop_of(a) == w.pop_of(b) {
                    if w.end_net_of(a) != w.end_net_of(b) {
                        intra.push(d);
                    }
                } else {
                    cross.push(d);
                }
            }
        }
        assert!(!intra.is_empty() && !cross.is_empty());
        let med_intra = np_util::stats::median(&intra).expect("non-empty");
        let med_cross = np_util::stats::median(&cross).expect("non-empty");
        assert!(
            med_intra < med_cross,
            "intra-PoP {med_intra} ms should be below cross-PoP {med_cross} ms"
        );
        assert!(med_intra < 40.0, "intra-PoP median too large: {med_intra}");
    }

    #[test]
    fn multihomed_targets_can_flip_sides() {
        let w = InternetModel::generate(WorldParams::quick_scale(), 3);
        // Find a multihomed DNS host and check that at least one pair of
        // vantage points disagrees on the observed side for *some* such
        // host (that is the mechanism that prunes them from clusters).
        let mut any_flip = false;
        for h in w.dns_servers() {
            let Some(e) = w.end_net_of(h) else { continue };
            if w.end_nets[e.idx()].secondary_pop.is_none() {
                continue;
            }
            let sides: Vec<_> = (0..w.vantage_points.len())
                .map(|v| w.side_from_vp(v, h).0)
                .collect();
            if sides.windows(2).any(|s| s[0] != s[1]) {
                any_flip = true;
                break;
            }
        }
        assert!(any_flip, "no multihomed host ever flips sides");
    }
}
