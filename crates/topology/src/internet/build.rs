//! Generation of the [`InternetModel`].
//!
//! The build proceeds top-down: ASes and their PoPs (backbone), then each
//! region's access infrastructure, then the populations (orgs/DNS
//! servers, Azureus peers, vantage points), then cross-links and cached
//! shortest paths. All sizing choices are commented with the paper (or
//! general Internet-measurement) rationale.

use super::*;
use crate::hub::HubMatrix;
use crate::ip::IpAllocator;
use crate::names::Annotation;
use np_metric::graph::{Graph, NodeId};
use np_util::dist::{self, Zipf};
use np_util::rng::{rng_for, sub_seed};
use rand::rngs::StdRng;
use rand::Rng;

/// Mutable world-in-progress.
struct Builder {
    params: WorldParams,
    pops: Vec<Pop>,
    routers: Vec<Router>,
    end_nets: Vec<EndNet>,
    hosts: Vec<Host>,
    alloc: IpAllocator,
    /// Per-pop bookkeeping.
    per_pop: Vec<PopState>,
    /// Per-AS infra address block and router sequence.
    as_infra: Vec<(crate::ip::Prefix, u32)>,
    pop_as: Vec<u16>,
    /// Next host index per end-network (indexed by `EndNetId`).
    en_host_seq: Vec<u32>,
    /// Per-AS national home pool (/13) and its next /22 index. Consumer
    /// ISPs allocate home addresses from country-wide pools, which is
    /// what keeps Figure 11's false-positive floor high: a 13/14-bit
    /// prefix match says "same ISP", not "same city".
    as_national: Vec<(crate::ip::Prefix, u64)>,
}

struct PopState {
    /// /15 block of the pop; lower /16 = end-nets, upper /16 = home pools.
    block: crate::ip::Prefix,
    aggs: Vec<RouterId>,
    dslams: Vec<RouterId>,
    dslam_home_seq: Vec<u32>,
    /// Per-DSLAM access-technology factor: cable/fibre areas run faster
    /// last miles than interleaved DSL ones, which is what spreads the
    /// latency *levels* of Figure 7's clusters apart.
    dslam_tech: Vec<f64>,
    /// Per-DSLAM home address pool (/22) — either carved from the PoP's
    /// block or from the AS-wide national pool.
    dslam_pool: Vec<crate::ip::Prefix>,
    en_count: u32,
    attach_seq: u32,
    /// Generic (non-org) end-networks available for peer placement.
    generic_ens: Vec<EndNetId>,
}

/// Max end-networks per PoP (bounded by the /24s in the lower /16).
const MAX_ENS_PER_POP: u32 = 250;
/// Max homes per DSLAM pool (/22 minus network/broadcast slack).
const MAX_HOMES_PER_DSLAM: u32 = 1_020;

impl Builder {
    fn add_router(
        &mut self,
        pop: PopId,
        kind: RouterKind,
        parent: Option<RouterId>,
        up_lat: Micros,
        anno: Option<Annotation>,
        responsive: bool,
    ) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        let (pop_lat, depth) = match parent {
            None => (Micros::ZERO, 0),
            Some(p) => {
                let pr = &self.routers[p.idx()];
                debug_assert_eq!(pr.pop, pop, "parent in another region");
                (pr.pop_lat + up_lat, pr.depth + 1)
            }
        };
        let as_idx = self.pop_as[pop.idx()] as usize;
        let (infra, seq) = &mut self.as_infra[as_idx];
        let ip = infra.addr((*seq as u64) % infra.size());
        *seq += 1;
        let local = self.pops[pop.idx()].routers.len() as u32;
        self.routers.push(Router {
            pop,
            kind,
            parent,
            up_lat,
            pop_lat,
            depth,
            anno,
            responsive,
            ip,
            local,
            core_dist: Micros::ZERO, // filled in finalise()
        });
        self.pops[pop.idx()].routers.push(id);
        id
    }

    /// ISP annotation for a region, with the configured mis-annotation
    /// rate (wrong city — the rockettrace failure mode the paper calls
    /// out).
    fn isp_anno(&self, pop: PopId, rng: &mut StdRng) -> Option<Annotation> {
        let p = &self.pops[pop.idx()];
        let city = if dist::coin(rng, self.params.p_misconfig) {
            rng.gen_range(0..self.pops.len() as u16)
        } else {
            p.city_id
        };
        Some(Annotation {
            as_id: p.as_id,
            city_id: city,
        })
    }

    /// Pick (or lazily create) the aggregation router a new attach router
    /// should hang off. Roughly one agg per 6 attachments; aggs sit close
    /// to the core (metro links), occasionally chained one level deeper.
    fn pick_parent(&mut self, pop: PopId, rng: &mut StdRng) -> (RouterId, bool) {
        let st = &self.per_pop[pop.idx()];
        let want_aggs = (st.attach_seq / 6 + 1) as usize;
        // Most attachments go through one or two aggregation levels —
        // metro access trees are deeper than a pure star, which is what
        // Figure 10's hop-length distribution measures.
        if dist::coin(rng, 0.3) {
            return (self.pops[pop.idx()].core, false);
        }
        if self.per_pop[pop.idx()].aggs.len() < want_aggs {
            let chain = dist::coin(rng, 0.45) && !self.per_pop[pop.idx()].aggs.is_empty();
            let parent = if chain {
                let aggs = &self.per_pop[pop.idx()].aggs;
                aggs[rng.gen_range(0..aggs.len())]
            } else {
                self.pops[pop.idx()].core
            };
            let up = Micros::from_ms(dist::uniform(rng, 0.3, 2.0));
            let anno = self.isp_anno(pop, rng);
            let responsive = dist::coin(rng, self.params.p_router_responsive);
            let agg = self.add_router(pop, RouterKind::Agg, Some(parent), up, anno, responsive);
            self.per_pop[pop.idx()].aggs.push(agg);
        }
        let aggs = &self.per_pop[pop.idx()].aggs;
        (aggs[rng.gen_range(0..aggs.len())], true)
    }

    /// Create an end-network in `pop`.
    fn add_end_net(&mut self, pop: PopId, org: Option<OrgId>, rng: &mut StdRng) -> EndNetId {
        let (parent, _) = self.pick_parent(pop, rng);
        // The customer access link carries the bulk of the last-hop
        // latency (0.5–8 ms): this is the paper's "end-networks at about
        // the same [few-ms] latency from the PoP".
        let up = Micros::from_ms(dist::uniform(rng, 0.5, 8.0));
        // Customer gateways carry no ISP annotation (rockettrace cannot
        // map them to an ISP PoP) and answer probes often enough.
        let gw = self.add_router(pop, RouterKind::Gateway, Some(parent), up, None, {
            dist::coin(rng, 0.8)
        });
        self.per_pop[pop.idx()].attach_seq += 1;
        let multihomed = dist::coin(rng, self.params.p_multihomed);
        let st = &mut self.per_pop[pop.idx()];
        let prefix = if multihomed {
            self.alloc.pi_slash24()
        } else {
            let en_idx = st.en_count.min(MAX_ENS_PER_POP - 1);
            st.block.subnet(16, 0).subnet(24, en_idx as u64)
        };
        st.en_count += 1;
        let secondary_pop = if multihomed {
            let n = self.pops.len();
            let other = (pop.idx() + 1 + rng.gen_range(0..n - 1)) % n;
            Some(PopId(other as u16))
        } else {
            None
        };
        let id = EndNetId(self.end_nets.len() as u32);
        self.end_nets.push(EndNet {
            pop,
            gateway: gw,
            prefix,
            org,
            secondary_pop,
        });
        self.en_host_seq.push(0);
        if org.is_none() {
            self.per_pop[pop.idx()].generic_ens.push(id);
        }
        id
    }

    fn add_host_in_en(
        &mut self,
        en: EndNetId,
        kind: HostKind,
        icmp: bool,
        tcp: bool,
        route_stable: bool,
        rng: &mut StdRng,
    ) -> HostId {
        let seq = &mut self.en_host_seq[en.idx()];
        let host_idx = (*seq as u64 % 253) + 1; // skip network address
        *seq += 1;
        let ip = self.end_nets[en.idx()].prefix.addr(host_idx);
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            kind,
            attach: Attachment::EndNet(en),
            access_lat: Micros::from_us(dist::uniform(rng, 50.0, 400.0) as u64),
            ip,
            icmp_responsive: icmp,
            tcp_responsive: tcp,
            route_stable,
        });
        id
    }
}

impl InternetModel {
    /// Generate a world from `params` and `seed`.
    pub fn generate(params: WorldParams, seed: u64) -> InternetModel {
        assert!(params.pops_per_as.1 <= 7, "a /12 holds at most 7 pop /15s");
        assert!(params.dslams_per_pop.1 <= 60, "a /16 holds 64 /22 pools");
        let mut rng = rng_for(seed, 0x49_4E_54); // "INT"

        // ---- ASes and PoPs ----------------------------------------------
        let mut pop_as: Vec<u16> = Vec::new();
        for a in 0..params.n_as as u16 {
            let k = rng.gen_range(params.pops_per_as.0..=params.pops_per_as.1);
            for _ in 0..k {
                pop_as.push(a);
            }
        }
        let n_pops = pop_as.len();
        let hubs = HubMatrix::synthetic_meridian_like(n_pops.max(2), sub_seed(seed, 1));

        // ---- backbone: PoP graph ----------------------------------------
        let mut pop_graph = Graph::with_nodes(n_pops);
        let add_pop_edge = |g: &mut Graph, a: usize, b: usize| {
            if a != b {
                g.add_edge(NodeId(a as u32), NodeId(b as u32), hubs.rtt(a, b));
            }
        };
        // Intra-AS chains.
        for a in 0..params.n_as as u16 {
            let mine: Vec<usize> = (0..n_pops).filter(|&p| pop_as[p] == a).collect();
            for w in mine.windows(2) {
                add_pop_edge(&mut pop_graph, w[0], w[1]);
            }
        }
        // Inter-AS: ring over first PoPs (connectivity) + random peering.
        let first_pop: Vec<usize> = (0..params.n_as as u16)
            .filter_map(|a| (0..n_pops).find(|&p| pop_as[p] == a))
            .collect();
        for i in 0..first_pop.len() {
            add_pop_edge(
                &mut pop_graph,
                first_pop[i],
                first_pop[(i + 1) % first_pop.len()],
            );
        }
        for &p in &first_pop {
            // Two extra peering links per AS spread path diversity.
            for _ in 0..2 {
                let q = rng.gen_range(0..n_pops);
                add_pop_edge(&mut pop_graph, p, q);
            }
        }

        // All-pairs PoP distances.
        let mut pop_dist = vec![0u32; n_pops * n_pops];
        let mut pop_sp = Vec::with_capacity(n_pops);
        for p in 0..n_pops {
            let sp = pop_graph.dijkstra(NodeId(p as u32), Micros::INFINITY);
            for q in 0..n_pops {
                let d = sp.dist(NodeId(q as u32));
                assert!(!d.is_infinite(), "backbone must be connected");
                pop_dist[p * n_pops + q] = d.as_us() as u32;
            }
            pop_sp.push(sp);
        }

        // ---- vantage-point PoPs: farthest-point sampling -----------------
        let mut vp_pops: Vec<usize> = vec![0];
        while vp_pops.len() < 7.min(n_pops) {
            let next = (0..n_pops)
                .filter(|p| !vp_pops.contains(p))
                .max_by_key(|&p| {
                    vp_pops
                        .iter()
                        .map(|&v| pop_dist[p * n_pops + v])
                        .min()
                        .unwrap_or(0)
                })
                .expect("pops remain");
            vp_pops.push(next);
        }
        let vp_pop_parent: Vec<Vec<u16>> = vp_pops
            .iter()
            .map(|&v| {
                (0..n_pops)
                    .map(|q| match pop_sp[v].path_to(NodeId(q as u32)) {
                        Some(path) if path.len() >= 2 => path[path.len() - 2].0 as u16,
                        _ => u16::MAX,
                    })
                    .collect()
            })
            .collect();
        drop(pop_sp);

        // ---- regions ------------------------------------------------------
        let mut b = Builder {
            params: params.clone(),
            pops: Vec::with_capacity(n_pops),
            routers: Vec::new(),
            end_nets: Vec::new(),
            hosts: Vec::new(),
            alloc: IpAllocator::new(),
            per_pop: Vec::with_capacity(n_pops),
            as_infra: Vec::new(),
            pop_as: pop_as.clone(),
            en_host_seq: Vec::new(),
            as_national: Vec::new(),
        };
        // Address blocks: a /12 per AS; its /16 #15 is router infra.
        let mut as_pop_counter = vec![0u64; params.n_as];
        let mut as_blocks = Vec::with_capacity(params.n_as);
        for _ in 0..params.n_as {
            let block = b.alloc.provider_block(12);
            b.as_infra.push((block.subnet(16, 15), 0));
            as_blocks.push(block);
            b.as_national.push((b.alloc.provider_block(13), 0));
        }
        for p in 0..n_pops {
            let as_idx = pop_as[p] as usize;
            let k = as_pop_counter[as_idx];
            as_pop_counter[as_idx] += 1;
            let block = as_blocks[as_idx].subnet(15, k);
            b.pops.push(Pop {
                as_id: pop_as[p],
                city_id: p as u16,
                core: RouterId(u32::MAX), // set below
                routers: Vec::new(),
                graph: Graph::default(), // set in finalise
            });
            b.per_pop.push(PopState {
                block,
                aggs: Vec::new(),
                dslams: Vec::new(),
                dslam_home_seq: Vec::new(),
                dslam_tech: Vec::new(),
                dslam_pool: Vec::new(),
                en_count: 0,
                attach_seq: 0,
                generic_ens: Vec::new(),
            });
            let anno = Some(Annotation {
                as_id: pop_as[p],
                city_id: p as u16,
            });
            // PoP cores answer probes: they are the paper's cluster-hubs.
            let core = b.add_router(PopId(p as u16), RouterKind::PopCore, None, Micros::ZERO, anno, true);
            b.pops[p].core = core;
            // DSLAMs for home users.
            let n_dslam = rng.gen_range(params.dslams_per_pop.0..=params.dslams_per_pop.1);
            for _ in 0..n_dslam {
                let (parent, _) = b.pick_parent(PopId(p as u16), &mut rng);
                let up = Micros::from_ms(dist::uniform(&mut rng, 0.5, 3.0));
                let anno = b.isp_anno(PopId(p as u16), &mut rng);
                let responsive = dist::coin(&mut rng, params.p_dslam_responsive);
                let d = b.add_router(
                    PopId(p as u16),
                    RouterKind::Dslam,
                    Some(parent),
                    up,
                    anno,
                    responsive,
                );
                b.per_pop[p].dslams.push(d);
                let di = b.per_pop[p].dslam_home_seq.len();
                b.per_pop[p].dslam_home_seq.push(0);
                let tech = dist::log_normal(&mut rng, 0.0, 0.5).clamp(0.95, 4.0);
                b.per_pop[p].dslam_tech.push(tech);
                // Half the pools are national (AS-wide), half PoP-local.
                let pool = if dist::coin(&mut rng, 0.5) {
                    let (national, next) = &mut b.as_national[as_idx];
                    let idx = *next % 512;
                    *next += 1;
                    national.subnet(22, idx)
                } else {
                    b.per_pop[p].block.subnet(16, 1).subnet(22, (di % 64) as u64)
                };
                b.per_pop[p].dslam_pool.push(pool);
            }
        }

        // PoP popularity: Zipf with mild skew (s = 0.5) so metro PoPs host
        // many orgs/peers without blowing the per-PoP address budget.
        let zipf = Zipf::new(n_pops, 0.5);
        // Home users concentrate harder than orgs do (big consumer metro
        // PoPs): a steeper Zipf drives the large clusters of Figure 6.
        let home_zipf = Zipf::new(n_pops, 0.7);
        let mut pop_order: Vec<usize> = (0..n_pops).collect();
        use rand::seq::SliceRandom;
        pop_order.shuffle(&mut rng);
        let pick_pop = |rng: &mut StdRng, b: &Builder| -> PopId {
            let mut p = PopId(pop_order[zipf.sample(rng) - 1] as u16);
            // Redirect when the pop's EN budget is exhausted.
            let mut guard = 0;
            while b.per_pop[p.idx()].en_count >= MAX_ENS_PER_POP {
                p = PopId(rng.gen_range(0..n_pops) as u16);
                guard += 1;
                assert!(guard < 1_000, "EN budget exhausted everywhere");
            }
            p
        };

        // ---- orgs and DNS servers ----------------------------------------
        let dns_start = b.hosts.len() as u32;
        for org in 0..params.n_orgs as u32 {
            let org = OrgId(org);
            let pop1 = pick_pop(&mut rng, &b);
            let en1 = b.add_end_net(pop1, Some(org), &mut rng);
            // Geographically split org: second site in another PoP.
            let en2 = if dist::coin(&mut rng, params.p_org_split) {
                let pop2 = pick_pop(&mut rng, &b);
                Some(b.add_end_net(pop2, Some(org), &mut rng))
            } else {
                None
            };
            let n_servers = rng.gen_range(params.dns_per_org.0..=params.dns_per_org.1);
            for s in 0..n_servers {
                let en = match en2 {
                    Some(e2) if s % 2 == 1 => e2,
                    _ => en1,
                };
                let icmp = dist::coin(&mut rng, params.p_dns_icmp);
                b.add_host_in_en(en, HostKind::Dns { org }, icmp, false, true, &mut rng);
            }
        }
        let dns_end = b.hosts.len() as u32;

        // ---- Azureus peers -------------------------------------------------
        let az_start = b.hosts.len() as u32;
        for _ in 0..params.n_azureus {
            let tcp = dist::coin(&mut rng, params.p_azureus_tcp);
            let stable = dist::coin(&mut rng, params.p_route_stable);
            if dist::coin(&mut rng, params.p_home_peer) {
                // Home user behind a DSLAM; heavy-tailed last mile.
                let pop = PopId(pop_order[home_zipf.sample(&mut rng) - 1] as u16);
                let st = &mut b.per_pop[pop.idx()];
                let di = rng.gen_range(0..st.dslams.len());
                let dslam = st.dslams[di];
                let seq = st.dslam_home_seq[di];
                st.dslam_home_seq[di] += 1;
                let pool = st.dslam_pool[di];
                // Address reuse past the pool size models CGNAT blocks.
                let ip = pool.addr((seq % MAX_HOMES_PER_DSLAM) as u64 + 2);
                let tech = st.dslam_tech[di];
                let last_mile_ms =
                    (tech * dist::log_normal(&mut rng, 9.0f64.ln(), 0.35)).clamp(2.0, 60.0);
                b.hosts.push(Host {
                    kind: HostKind::Azureus,
                    attach: Attachment::Home { dslam },
                    access_lat: Micros::from_ms(last_mile_ms),
                    ip,
                    icmp_responsive: dist::coin(&mut rng, 0.05),
                    tcp_responsive: tcp,
                    route_stable: stable,
                });
            } else {
                // Campus/corporate peer in a (mostly shared) generic EN.
                let pop = pick_pop(&mut rng, &b);
                let reuse = {
                    let pool = &b.per_pop[pop.idx()].generic_ens;
                    if !pool.is_empty() && dist::coin(&mut rng, 0.85) {
                        Some(pool[rng.gen_range(0..pool.len())])
                    } else {
                        None
                    }
                };
                let en = match reuse {
                    Some(e) => e,
                    None => b.add_end_net(pop, None, &mut rng),
                };
                b.add_host_in_en(
                    en,
                    HostKind::Azureus,
                    dist::coin(&mut rng, 0.1),
                    tcp,
                    stable,
                    &mut rng,
                );
            }
        }
        let az_end = b.hosts.len() as u32;

        // ---- vantage points -------------------------------------------------
        let mut vantage_points = Vec::with_capacity(vp_pops.len());
        for &vp in &vp_pops {
            let en = b.add_end_net(PopId(vp as u16), None, &mut rng);
            // Vantage points are well-connected university networks: force
            // a short, stable access path.
            let gw = b.end_nets[en.idx()].gateway;
            let parent = b.routers[gw.idx()].parent.expect("gateway has a parent");
            let parent_pop_lat = b.routers[parent.idx()].pop_lat;
            b.routers[gw.idx()].up_lat = Micros::from_ms(0.5);
            b.routers[gw.idx()].pop_lat = parent_pop_lat + Micros::from_ms(0.5);
            b.routers[gw.idx()].responsive = true;
            b.end_nets[en.idx()].secondary_pop = None;
            let h = b.add_host_in_en(en, HostKind::Vantage, true, true, true, &mut rng);
            vantage_points.push(h);
        }

        // ---- cross-links + region graphs + cached core distances ----------
        let mut model = InternetModel {
            params,
            pops: b.pops,
            routers: b.routers,
            end_nets: b.end_nets,
            hosts: b.hosts,
            n_orgs: b.params.n_orgs,
            dns_range: dns_start..dns_end,
            azureus_range: az_start..az_end,
            vantage_points,
            pop_dist,
            vp_pop_parent,
        };
        model.finalise_regions(&mut rng);
        model
    }

    /// Build per-region graphs (tree uplinks + cross-links) and cache each
    /// router's shortest-path distance to its PoP core.
    fn finalise_regions(&mut self, rng: &mut StdRng) {
        for p in 0..self.pops.len() {
            let router_ids = self.pops[p].routers.clone();
            let mut g = Graph::with_nodes(router_ids.len());
            for (local, &rid) in router_ids.iter().enumerate() {
                let r = &self.routers[rid.idx()];
                debug_assert_eq!(r.local as usize, local);
                if let Some(parent) = r.parent {
                    let pl = self.routers[parent.idx()].local;
                    g.add_edge(NodeId(local as u32), NodeId(pl), r.up_lat);
                }
            }
            // Cross-links: alternate intra-metro paths invisible to the
            // traceroute tree (the Figure-4 "measured < predicted" source).
            let expected = self.params.cross_link_density * router_ids.len() as f64;
            let n_links = expected.floor() as usize
                + usize::from(dist::coin(rng, expected.fract()));
            if router_ids.len() >= 3 {
                for _ in 0..n_links {
                    let a = rng.gen_range(1..router_ids.len()); // skip core
                    let bq = rng.gen_range(1..router_ids.len());
                    if a != bq {
                        let w = Micros::from_ms(dist::uniform(rng, 0.3, 2.0));
                        g.add_edge(NodeId(a as u32), NodeId(bq as u32), w);
                    }
                }
            }
            // Metro IXP: a fraction of the gateways peer pairwise; each
            // member has one access leg, and member pairs meet at the sum
            // of their legs. Invisible to traceroute (like cross-links).
            let mut ixp_legs: Vec<(usize, f64)> = Vec::new();
            for (local, &rid) in router_ids.iter().enumerate() {
                if self.routers[rid.idx()].kind == RouterKind::Gateway
                    && dist::coin(rng, self.params.p_ixp)
                {
                    ixp_legs.push((local, dist::uniform(rng, 0.2, 1.5)));
                }
            }
            for (i, &(la, lega)) in ixp_legs.iter().enumerate() {
                for &(lb, legb) in ixp_legs.iter().skip(i + 1) {
                    g.add_edge(
                        NodeId(la as u32),
                        NodeId(lb as u32),
                        Micros::from_ms(lega + legb),
                    );
                }
            }
            // Cache core distances over the region graph.
            let core_local = self.routers[self.pops[p].core.idx()].local;
            let sp = g.dijkstra(NodeId(core_local), Micros::INFINITY);
            for (local, &rid) in router_ids.iter().enumerate() {
                let d = sp.dist(NodeId(local as u32));
                debug_assert!(!d.is_infinite(), "region must be connected");
                self.routers[rid.idx()].core_dist = d;
            }
            self.pops[p].graph = g;
        }
    }
}
