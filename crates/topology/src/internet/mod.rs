//! The router-level Internet model.
//!
//! This is the ground-truth world for the paper's measurement studies
//! (§3: Figures 3–7; §5: Figures 10–11). Its shape follows Figure 1 of
//! the paper:
//!
//! ```text
//!                      backbone (PoP graph over HubMatrix sites)
//!                              |
//!                         [PoP core]          <- ISP (AS, city) annotation
//!                         /    |    \
//!                     [agg]  [agg]  [DSLAM]   <- ISP metro aggregation
//!                     /   \     \      |||
//!                  [gw]  [gw]  [gw]  homes    <- customer gateways
//!                   |      |     |  (last-mile 3–45 ms)
//!                  EN     EN    EN
//!                (hosts at LAN latencies, 100s of µs)
//! ```
//!
//! * **PoPs** are sites from a [`crate::hub::HubMatrix`]; the backbone is
//!   a PoP-level graph (intra-AS chains + inter-AS peering) whose
//!   all-pairs shortest paths define inter-PoP latency.
//! * **Access trees** hang off each PoP core: aggregation routers with
//!   *small* metro latencies (the paper's "routers in a PoP are quite
//!   close together"), customer gateway ("attach") routers whose uplink
//!   carries the bulk of the access latency, and DSLAMs whose homes have
//!   heavy-tailed last-mile latencies.
//! * **Cross-links** between routers of the same region create alternate
//!   paths that traceroute's tree view cannot see — the source of the
//!   "measured < predicted at large latencies" trend of Figure 4.
//! * **End-networks** carry `/24`s from their PoP's block (or a
//!   provider-independent `/24` when multihomed), **orgs** own domains
//!   and run 1–4 recursive DNS servers, **Azureus peers** are mostly home
//!   hosts with low TCP-responsiveness, and 7 **vantage points** sit in
//!   maximally spread PoPs (the paper's Table 1).
//!
//! All randomness derives from the seed passed to
//! [`InternetModel::generate`].

mod build;
mod routing;

pub use routing::TraceHop;

use crate::ip::{Ipv4, Prefix};
use crate::names::Annotation;
use np_metric::graph::Graph;
use np_util::Micros;

/// Index of a PoP.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PopId(pub u16);

impl PopId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of a router.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouterId(pub u32);

impl RouterId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of an end-network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EndNetId(pub u32);

impl EndNetId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of a host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

impl HostId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of an organisation (1:1 with a DNS domain).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrgId(pub u32);

/// What role a router plays in its region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterKind {
    /// The PoP core (one per PoP; the paper's cluster-hub candidate).
    PopCore,
    /// Metro aggregation, ISP-owned, at small latency from the core.
    Agg,
    /// Customer gateway at the top of an end-network.
    Gateway,
    /// DSLAM/BRAS serving home users.
    Dslam,
}

/// A router.
#[derive(Clone, Debug)]
pub struct Router {
    pub pop: PopId,
    pub kind: RouterKind,
    /// Parent in the region tree (`None` for the PoP core).
    pub parent: Option<RouterId>,
    /// Latency of the uplink to the parent.
    pub up_lat: Micros,
    /// Cumulative tree latency to the PoP core.
    pub pop_lat: Micros,
    /// Tree hops to the PoP core.
    pub depth: u32,
    /// The rockettrace annotation (possibly mis-configured).
    pub anno: Option<Annotation>,
    /// Does this router answer probes (traceroute/ping)?
    pub responsive: bool,
    /// The router's own address (UCL keys are router IPs).
    pub ip: Ipv4,
    /// Index of this router inside its PoP's local graph.
    pub(crate) local: u32,
    /// Shortest-path latency to the PoP core over the region graph
    /// (accounts for cross-links; cached at build time).
    pub core_dist: Micros,
}

/// A PoP.
#[derive(Clone, Debug)]
pub struct Pop {
    pub as_id: u16,
    pub city_id: u16,
    /// The PoP core router.
    pub core: RouterId,
    /// All routers of the region (core, aggs, gateways, DSLAMs); a
    /// router's position in this vector is its local-graph node index.
    pub routers: Vec<RouterId>,
    /// The region graph: tree uplinks plus cross-links, local indices.
    pub(crate) graph: Graph,
}

/// An end-network (campus/corporate LAN behind a customer gateway).
#[derive(Clone, Debug)]
pub struct EndNet {
    pub pop: PopId,
    /// The gateway router at the top of the network.
    pub gateway: RouterId,
    /// Address block of the network.
    pub prefix: Prefix,
    /// Owning organisation, when org-allocated.
    pub org: Option<OrgId>,
    /// Secondary upstream PoP for multihomed networks. Traffic still uses
    /// the primary; the secondary only influences routes *seen from*
    /// vantage points closer to it (which is what breaks upstream-router
    /// agreement in the Azureus pipeline, as in the paper).
    pub secondary_pop: Option<PopId>,
}

/// Where a host hangs off the topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Attachment {
    /// Inside an end-network, behind its gateway.
    EndNet(EndNetId),
    /// A home user behind a DSLAM.
    Home { dslam: RouterId },
}

/// The host's role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostKind {
    /// A recursive DNS server of an org.
    Dns { org: OrgId },
    /// An Azureus-like P2P client.
    Azureus,
    /// A measurement vantage point (the paper's PlanetLab nodes).
    Vantage,
}

/// A host.
#[derive(Clone, Debug)]
pub struct Host {
    pub kind: HostKind,
    pub attach: Attachment,
    /// Latency from the host to its attach router (LAN or last-mile).
    pub access_lat: Micros,
    pub ip: Ipv4,
    /// Answers ICMP (ping/traceroute final hop)?
    pub icmp_responsive: bool,
    /// Accepts TCP connects on the Azureus port (TCP-ping)?
    pub tcp_responsive: bool,
    /// Does the host's last hop look the same from every vantage point?
    /// When false (ECMP/ICMP-filter variability), traceroutes from
    /// different vantage points disagree on the upstream router, and the
    /// Azureus pipeline discards the peer — the paper's dominant source
    /// of attrition (156,658 → 5,904).
    pub route_stable: bool,
}

/// Generation parameters. See [`WorldParams::paper_scale`] and
/// [`WorldParams::quick_scale`].
#[derive(Clone, Debug)]
pub struct WorldParams {
    /// Number of ASes.
    pub n_as: usize,
    /// PoPs per AS: uniform in this range.
    pub pops_per_as: (usize, usize),
    /// Cross-links per region as a fraction of the region's router
    /// count (alternate intra-metro paths invisible to traceroute).
    pub cross_link_density: f64,
    /// Probability a customer gateway peers at the metro IXP: IXP
    /// members reach each other in a couple of ms without transiting the
    /// PoP core — the strongest source of "measured < predicted" pairs
    /// (the paper's alternate-path explanation for Figure 4's tail).
    pub p_ixp: f64,
    /// Number of organisations (= domains).
    pub n_orgs: usize,
    /// DNS servers per org: uniform in this range.
    pub dns_per_org: (usize, usize),
    /// Probability an org's networks sit in two different PoPs (the
    /// paper's geographically split same-domain servers).
    pub p_org_split: f64,
    /// Number of Azureus peers.
    pub n_azureus: usize,
    /// Fraction of Azureus peers that are home users.
    pub p_home_peer: f64,
    /// Probability an end-network is multihomed (PI prefix + secondary
    /// upstream PoP).
    pub p_multihomed: f64,
    /// Probability an ISP router answers probes.
    pub p_router_responsive: f64,
    /// Probability a DSLAM answers probes (lower: access gear often
    /// filters ICMP; this is what merges DSLAM trees into bigger
    /// clusters).
    pub p_dslam_responsive: f64,
    /// Probability a router name is mis-annotated with a random city.
    pub p_misconfig: f64,
    /// Probability a DNS server answers ping.
    pub p_dns_icmp: f64,
    /// Probability an Azureus peer accepts the TCP-ping.
    pub p_azureus_tcp: f64,
    /// Probability an Azureus peer's last hop is consistent across
    /// vantage points.
    pub p_route_stable: f64,
    /// DSLAMs per PoP: uniform in this range.
    pub dslams_per_pop: (usize, usize),
}

impl WorldParams {
    /// Full paper scale: ~22 k DNS servers (Ballani et al.) and 156,658
    /// Azureus IPs (Ledlie et al.).
    pub fn paper_scale() -> WorldParams {
        WorldParams {
            n_as: 110,
            pops_per_as: (1, 7),
            cross_link_density: 0.12,
            p_ixp: 0.30,
            n_orgs: 8_800, // ~2.5 servers/org -> ~22k DNS servers
            dns_per_org: (1, 4),
            p_org_split: 0.15,
            n_azureus: 156_658,
            p_home_peer: 0.85,
            p_multihomed: 0.12,
            p_router_responsive: 0.85,
            p_dslam_responsive: 0.55,
            p_misconfig: 0.05,
            p_dns_icmp: 0.95,
            p_azureus_tcp: 0.15,
            p_route_stable: 0.25,
            dslams_per_pop: (1, 6),
        }
    }

    /// A ~20× smaller world for tests and `--quick` runs.
    pub fn quick_scale() -> WorldParams {
        WorldParams {
            n_as: 24,
            pops_per_as: (1, 5),
            cross_link_density: 0.12,
            p_ixp: 0.30,
            n_orgs: 450,
            dns_per_org: (1, 4),
            p_org_split: 0.15,
            n_azureus: 8_000,
            p_home_peer: 0.85,
            p_multihomed: 0.12,
            p_router_responsive: 0.85,
            p_dslam_responsive: 0.55,
            p_misconfig: 0.05,
            p_dns_icmp: 0.95,
            p_azureus_tcp: 0.15,
            p_route_stable: 0.25,
            dslams_per_pop: (1, 6),
        }
    }
}

/// The generated world.
pub struct InternetModel {
    pub params: WorldParams,
    pub pops: Vec<Pop>,
    pub routers: Vec<Router>,
    pub end_nets: Vec<EndNet>,
    pub hosts: Vec<Host>,
    /// Number of orgs (org ids are `0..n_orgs`).
    pub n_orgs: usize,
    /// Host-id ranges by role, in generation order.
    dns_range: std::ops::Range<u32>,
    azureus_range: std::ops::Range<u32>,
    /// The 7 vantage-point hosts.
    pub vantage_points: Vec<HostId>,
    /// All-pairs PoP distances (µs), row-major `n_pops²`.
    pub(crate) pop_dist: Vec<u32>,
    /// Per-vantage-point PoP-level shortest-path parents
    /// (`vp_pop_parent[v][p]` = previous PoP on the path from the VP's
    /// PoP to `p`; `u16::MAX` for the VP's own PoP).
    pub(crate) vp_pop_parent: Vec<Vec<u16>>,
}

impl InternetModel {
    /// Number of PoPs.
    pub fn n_pops(&self) -> usize {
        self.pops.len()
    }

    /// Inter-PoP RTT along the backbone's shortest path.
    #[inline]
    pub fn pop_rtt(&self, a: PopId, b: PopId) -> Micros {
        Micros(self.pop_dist[a.idx() * self.pops.len() + b.idx()] as u64)
    }

    /// DNS-server host ids.
    pub fn dns_servers(&self) -> impl Iterator<Item = HostId> + '_ {
        self.dns_range.clone().map(HostId)
    }

    /// Azureus peer host ids.
    pub fn azureus_peers(&self) -> impl Iterator<Item = HostId> + '_ {
        self.azureus_range.clone().map(HostId)
    }

    /// Count of DNS servers.
    pub fn n_dns(&self) -> usize {
        self.dns_range.len()
    }

    /// Count of Azureus peers.
    pub fn n_azureus(&self) -> usize {
        self.azureus_range.len()
    }

    /// Convenience accessor.
    pub fn host(&self, h: HostId) -> &Host {
        &self.hosts[h.idx()]
    }

    /// Convenience accessor.
    pub fn router(&self, r: RouterId) -> &Router {
        &self.routers[r.idx()]
    }

    /// The end-network a host lives in, if any.
    pub fn end_net_of(&self, h: HostId) -> Option<EndNetId> {
        match self.host(h).attach {
            Attachment::EndNet(e) => Some(e),
            Attachment::Home { .. } => None,
        }
    }

    /// The org of a DNS host.
    pub fn org_of(&self, h: HostId) -> Option<OrgId> {
        match self.host(h).kind {
            HostKind::Dns { org } => Some(org),
            _ => None,
        }
    }

    /// The PoP serving a host (primary side for multihomed networks).
    pub fn pop_of(&self, h: HostId) -> PopId {
        self.router(self.attach_router(h)).pop
    }

    /// The router a host directly attaches to.
    pub fn attach_router(&self, h: HostId) -> RouterId {
        match self.host(h).attach {
            Attachment::EndNet(e) => self.end_nets[e.idx()].gateway,
            Attachment::Home { dslam } => dslam,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::routing::tests_support::assert_world_invariants;

    fn quick() -> InternetModel {
        InternetModel::generate(WorldParams::quick_scale(), 77)
    }

    #[test]
    fn quick_world_has_expected_populations() {
        let w = quick();
        assert!(w.n_pops() >= 24, "n_pops {}", w.n_pops());
        let dns = w.n_dns();
        assert!(
            (700..=2_000).contains(&dns),
            "dns count {dns} (want ~450 orgs x ~2.5)"
        );
        assert_eq!(w.n_azureus(), 8_000);
        assert_eq!(w.vantage_points.len(), 7);
    }

    #[test]
    fn world_structural_invariants() {
        assert_world_invariants(&quick());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = InternetModel::generate(WorldParams::quick_scale(), 5);
        let b = InternetModel::generate(WorldParams::quick_scale(), 5);
        assert_eq!(a.routers.len(), b.routers.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
        let ha = a.hosts[100].ip;
        let hb = b.hosts[100].ip;
        assert_eq!(ha, hb);
        let c = InternetModel::generate(WorldParams::quick_scale(), 6);
        // Different seeds move at least the host IPs around.
        let same = a
            .hosts
            .iter()
            .zip(&c.hosts)
            .filter(|(x, y)| x.ip == y.ip)
            .count();
        assert!(same < a.hosts.len(), "seed had no effect");
    }

    #[test]
    fn vantage_points_are_spread() {
        let w = quick();
        // All 7 VPs in distinct PoPs, pairwise backbone distance > 5 ms.
        let pops: Vec<PopId> = w.vantage_points.iter().map(|&v| w.pop_of(v)).collect();
        for i in 0..pops.len() {
            for j in (i + 1)..pops.len() {
                assert_ne!(pops[i], pops[j], "VPs share a PoP");
                let d = w.pop_rtt(pops[i], pops[j]);
                assert!(d > Micros::from_ms(5.0), "VPs too close: {d}");
            }
        }
    }

    #[test]
    fn multihomed_nets_have_pi_prefixes() {
        let w = quick();
        let mut multihomed = 0;
        for en in &w.end_nets {
            if en.secondary_pop.is_some() {
                multihomed += 1;
                assert!(
                    en.prefix.net >= (192 << 24),
                    "multihomed EN must use PI space, got {}",
                    en.prefix
                );
            }
        }
        assert!(multihomed > 0, "no multihomed networks generated");
        let frac = multihomed as f64 / w.end_nets.len() as f64;
        assert!((0.04..=0.25).contains(&frac), "multihomed fraction {frac}");
    }

    #[test]
    fn hosts_live_inside_their_prefix() {
        let w = quick();
        for h in w.dns_servers() {
            if let Some(e) = w.end_net_of(h) {
                let en = &w.end_nets[e.idx()];
                assert!(
                    en.prefix.contains(w.host(h).ip),
                    "host {} outside {}",
                    w.host(h).ip,
                    en.prefix
                );
            }
        }
    }

    #[test]
    fn azureus_responsiveness_is_sparse() {
        let w = quick();
        let responsive = w
            .azureus_peers()
            .filter(|&p| w.host(p).tcp_responsive)
            .count();
        let frac = responsive as f64 / w.n_azureus() as f64;
        assert!(
            (0.10..=0.20).contains(&frac),
            "TCP-responsive fraction {frac}, want ~0.15"
        );
    }
}
